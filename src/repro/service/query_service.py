"""The concurrent query service — N WAM machines over one shared EDB.

Paper §3.3: "Educe* is a multi-user system ... the code of a procedure
stored in the EDB is compiled once and executed by every session."  The
reproduction's unit of sharing is the :class:`~repro.edb.store.
ExternalStore`; everything *per-session* (WAM heap and stacks, internal
dictionary, loader cache) is private to a worker, so workers never
contend on machine state — only on storage, exactly as in the paper's
architecture.

Design (full locking discipline in ``docs/CONCURRENCY.md``):

* Each worker thread owns one :class:`~repro.engine.session.EduceStar`
  built over the shared store.  Queries run under the store's shared
  **read lock**; the store's ``mutation_epoch`` is captured right after
  lock acquisition, which linearizes every query against the writer
  stream (the differential concurrency suite replays the serial oracle
  from exactly these epochs).
* Updates go through :meth:`QueryService.store_program` /
  :meth:`store_relation` / :meth:`assert_external`, which run on a
  dedicated admin session under the exclusive write lock and then
  broadcast **per-procedure** cache invalidation to every worker's
  loader — never a global ``clear()`` stampede; unrelated procedures
  keep their cached code blocks.
* Submissions are tickets on a bounded queue (`ServiceSaturated` when
  full, `ServiceClosed` after shutdown begins).  A ticket may carry a
  deadline; a running query is interrupted cooperatively through the
  WAM's instruction-poll hook, surfacing as
  :exc:`~repro.errors.QueryInterrupted`.
* Service counters are striped per thread
  (:class:`~repro.obs.threadlocal.ThreadLocalCounters`) — no lock on
  the completion hot path — and merge into the service's
  :class:`~repro.obs.registry.MetricsRegistry` beside the shared
  store's I/O counters and every worker's machine/loader counters.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from ..engine.session import EduceStar
from ..errors import QueryInterrupted, ServiceClosed, ServiceSaturated
from ..obs import MetricsRegistry, ThreadLocalCounters
from ..obs.tracing import NULL_TRACER

#: A query is either a Prolog goal string (solved on the worker's
#: session, solutions collected eagerly under the read lock) or a
#: callable ``fn(session) -> value`` for programmatic access — e.g. the
#: relational interface or multi-goal transactions-of-reads.
Goal = Union[str, Callable[[EduceStar], object]]

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"
_TIMEOUT = "timeout"
_FAILED = "failed"


class QueryTicket:
    """A submitted query: future-style handle with cancellation.

    States: ``queued`` → ``running`` → one of ``done`` / ``cancelled``
    / ``timeout`` / ``failed`` (cancellation and deadline expiry can
    also strike while still queued).
    """

    def __init__(self, ticket_id: int, goal: Goal,
                 limit: Optional[int], deadline: Optional[float]):
        self.id = ticket_id
        self.goal = goal
        self.limit = limit
        self.state = _QUEUED
        #: store ``mutation_epoch`` observed under the read lock — the
        #: query saw exactly the first ``store_epoch`` mutations.
        self.store_epoch: Optional[int] = None
        self.value: object = None
        self.error: Optional[BaseException] = None
        self.worker: Optional[str] = None
        self._deadline = deadline          # time.monotonic() basis
        self._cancel = threading.Event()
        self._finished = threading.Event()

    # ------------------------------------------------------------- consumer

    def cancel(self) -> bool:
        """Request cancellation; returns False if already finished.

        A queued ticket is dropped when a worker dequeues it; a running
        query is interrupted at its next instruction poll.  Because
        cancellation is cooperative, a True return is *advisory* for a
        running query — the worker may still complete it before the
        next poll fires; only :meth:`result` reports the actual
        outcome.  A finish that races this call is detected: if the
        ticket completed between the check and the flag, the return
        value reflects the final state rather than promising a
        cancellation that can no longer happen."""
        if self._finished.is_set():
            return False
        self._cancel.set()
        if self._finished.is_set():
            # The worker finished the ticket concurrently; report
            # whether the cancellation actually took effect.
            return self.state in (_CANCELLED, _TIMEOUT)
        return True

    def done(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        """Block for the outcome.

        Returns the query's value (list of
        :class:`~repro.wam.machine.Solution` for goal strings, the
        callable's return value otherwise).  Raises
        :exc:`QueryInterrupted` for cancelled/timed-out tickets, the
        original exception for failed ones, :exc:`TimeoutError` if the
        ticket is still unfinished after *timeout* seconds."""
        if not self._finished.wait(timeout):
            raise TimeoutError(f"ticket {self.id} still {self.state}")
        if self.state == _CANCELLED:
            raise QueryInterrupted("cancelled")
        if self.state == _TIMEOUT:
            raise QueryInterrupted("deadline")
        if self.state == _FAILED:
            assert self.error is not None
            raise self.error
        return self.value

    # ------------------------------------------------------------- internal

    def _finish(self, state: str, value: object = None,
                error: Optional[BaseException] = None) -> None:
        self.state = state
        self.value = value
        self.error = error
        self._finished.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTicket(id={self.id}, state={self.state!r})"


class QueryService:
    """N worker sessions over one shared store, behind a bounded queue.

    ``store`` may be an existing :class:`ExternalStore` (e.g. one
    opened from a durable path) or None for a fresh in-memory EDB.
    Extra keyword arguments are forwarded to every worker's
    :class:`EduceStar` constructor (``preunify_depth``, ``index``,
    ...).
    """

    def __init__(self, store=None, workers: int = 4,
                 queue_size: int = 64, poll_interval: int = 512,
                 **session_kwargs):
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_size < 1:
            raise ValueError("need a positive queue bound")
        #: the admin session is built first: it creates the store when
        #: none is given and is the single session used for updates.
        self.admin = EduceStar(store=store, **session_kwargs)
        self.store = self.admin.store
        self.sessions: List[EduceStar] = [
            EduceStar(store=self.store, **session_kwargs)
            for _ in range(workers)
        ]
        for session in self.sessions:
            session.machine.poll_interval = poll_interval
        # Every EduceStar constructor re-points the *shared* pager's
        # tracer at its own; under concurrency a shared mutable tracer
        # is a race, so the pager reverts to the free null tracer.
        self.store.pager.tracer = NULL_TRACER

        self._queue: "queue.Queue[QueryTicket]" = queue.Queue(queue_size)
        self._queue_bound = queue_size
        self._submit_lock = threading.Lock()
        self._admin_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._shutdown = False

        self._stats = ThreadLocalCounters()
        self.metrics = MetricsRegistry()
        self.metrics.attach(self)
        self.metrics.attach(self.store)   # io_counters: pager + WAL + locks
        for session in self.sessions:
            self.metrics.attach(session.machine)
            self.metrics.attach(session.loader)

        self._threads = [
            threading.Thread(target=self._worker_loop,
                             args=(session,),
                             name=f"educe-worker-{i}", daemon=True)
            for i, session in enumerate(self.sessions)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------ submission

    def submit(self, goal: Goal, limit: Optional[int] = None,
               timeout: Optional[float] = None) -> QueryTicket:
        """Enqueue one query; returns its ticket.

        *timeout* is the query's deadline in seconds, measured from
        submission (queue wait counts).  Raises :exc:`ServiceClosed`
        after shutdown began, :exc:`ServiceSaturated` when the bounded
        queue is full."""
        return self._admit([(goal, limit, timeout)])[0]

    def submit_many(self, goals: Sequence[Goal],
                    limit: Optional[int] = None,
                    timeout: Optional[float] = None) -> List[QueryTicket]:
        """Atomically enqueue a batch: either every goal is admitted
        (in order) or none is and :exc:`ServiceSaturated` is raised."""
        return self._admit([(goal, limit, timeout) for goal in goals])

    def execute(self, goal: Goal, limit: Optional[int] = None,
                timeout: Optional[float] = None) -> object:
        """Submit and block for the result (convenience)."""
        return self.submit(goal, limit=limit, timeout=timeout).result()

    def _admit(self, specs: Iterable[Tuple[Goal, Optional[int],
                                           Optional[float]]]
               ) -> List[QueryTicket]:
        specs = list(specs)
        with self._submit_lock:
            if self._closed:
                self._stats.add("service_rejected", len(specs))
                raise ServiceClosed("service is shutting down")
            # All puts go through this lock, and concurrent gets only
            # free space, so the capacity check cannot over-admit.
            free = self._queue_bound - self._queue.qsize()
            if len(specs) > free:
                self._stats.add("service_rejected", len(specs))
                raise ServiceSaturated(
                    f"queue full ({len(specs)} submitted, {free} free)")
            tickets = []
            now = time.monotonic()
            for goal, limit, timeout in specs:
                deadline = None if timeout is None else now + timeout
                ticket = QueryTicket(next(self._ids), goal, limit, deadline)
                self._queue.put_nowait(ticket)
                tickets.append(ticket)
            self._stats.add("service_submitted", len(tickets))
        return tickets

    # --------------------------------------------------------------- updates

    def store_program(self, text: str) -> None:
        """Store a program in the shared EDB (exclusive write lock),
        then invalidate exactly the affected procedures everywhere."""
        with self._admin_lock:
            indicators = self.admin.store_program(text)
        self._broadcast_invalidate(indicators)

    def store_relation(self, name: str, rows: List[tuple],
                       **kwargs) -> None:
        with self._admin_lock:
            self.admin.store_relation(name, rows, **kwargs)
            arity = len(rows[0])
        self._broadcast_invalidate([(name, arity)])

    def assert_external(self, clause_text: str) -> None:
        with self._admin_lock:
            indicator = self.admin.assert_external(clause_text)
        self._broadcast_invalidate([indicator])

    def execute_admin(self, goal: Goal,
                      limit: Optional[int] = None) -> object:
        """Run a goal on the admin session — the write path for goals
        that mutate the store, e.g. the materialising relational
        operators (``db_select/3`` and friends, ``db_drop/1``).  On a
        worker those raise :class:`~repro.errors.LockOrderError`
        because the query holds the shared read lock; here the goal
        runs outside any read hold, so its mutators take the exclusive
        write lock normally.  The affected procedures are not known up
        front, so every worker's loader cache is cleared afterwards
        (a schema-level invalidation, not the per-procedure path)."""
        with self._admin_lock:
            if callable(goal):
                value = goal(self.admin)
            else:
                value = list(self.admin.solve(goal, limit=limit))
        for session in self.sessions:
            session.loader.invalidate()
        return value

    def _broadcast_invalidate(
            self, indicators: Iterable[Tuple[str, int]]) -> None:
        # Correctness never depends on this broadcast — cache keys
        # carry the procedure version — it reclaims worker memory and
        # keeps every loader's cache_epoch advancing with the writer.
        for name, arity in indicators:
            for session in self.sessions:
                session.loader.invalidate(name, arity)

    # -------------------------------------------------------------- shutdown

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service.

        With ``drain=True`` (default) queued tickets finish first; with
        ``drain=False`` queued tickets are cancelled and only in-flight
        queries run to completion.  *timeout* bounds the total join
        wait; workers still running after it are abandoned (daemon
        threads)."""
        with self._submit_lock:
            self._closed = True
        if not drain:
            while True:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                ticket._finish(_CANCELLED)
                self._stats.add("service_cancelled")
        self._shutdown = True
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            thread.join(remaining)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ---------------------------------------------------------- worker side

    def _worker_loop(self, session: EduceStar) -> None:
        while True:
            try:
                ticket = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._shutdown:
                    return
                continue
            self._run_ticket(session, ticket)

    def _run_ticket(self, session: EduceStar, ticket: QueryTicket) -> None:
        if ticket._cancel.is_set():
            ticket._finish(_CANCELLED)
            self._stats.add("service_cancelled")
            return
        now = time.monotonic()
        if ticket._deadline is not None and now >= ticket._deadline:
            ticket._finish(_TIMEOUT)
            self._stats.add("service_timeouts")
            return

        ticket.state = _RUNNING
        ticket.worker = threading.current_thread().name
        machine = session.machine
        cancel = ticket._cancel
        ticket_deadline = ticket._deadline

        def poll(_machine):
            if cancel.is_set():
                raise QueryInterrupted("cancelled")
            if (ticket_deadline is not None
                    and time.monotonic() >= ticket_deadline):
                raise QueryInterrupted("deadline")

        machine.poll_hook = poll
        try:
            # The whole query runs under the shared read lock: a writer
            # can never interleave mid-query, so capturing the epoch
            # here pins the query to one point of the mutation order.
            with self.store.reading():
                ticket.store_epoch = self.store.mutation_epoch
                if callable(ticket.goal):
                    value = ticket.goal(session)
                else:
                    value = list(session.solve(ticket.goal,
                                               limit=ticket.limit))
        except QueryInterrupted as interrupted:
            if interrupted.reason == "deadline":
                ticket._finish(_TIMEOUT)
                self._stats.add("service_timeouts")
            else:
                ticket._finish(_CANCELLED)
                self._stats.add("service_cancelled")
        except BaseException as error:  # noqa: BLE001 - recorded on ticket
            ticket._finish(_FAILED, error=error)
            self._stats.add("service_failed")
        else:
            ticket._finish(_DONE, value=value)
            self._stats.add("service_completed")
        finally:
            machine.poll_hook = None

    # -------------------------------------------------------------- counters

    def counters(self) -> dict:
        counters = dict.fromkeys((
            "service_submitted", "service_completed", "service_failed",
            "service_cancelled", "service_timeouts", "service_rejected",
        ), 0)
        counters.update(self._stats.counters())
        counters["service_queue_depth"] = self._queue.qsize()
        counters["service_workers"] = sum(
            1 for t in self._threads if t.is_alive())
        return counters
