"""The concurrent query service — N WAM machines over one shared EDB.

Paper §3.3: "Educe* is a multi-user system ... the code of a procedure
stored in the EDB is compiled once and executed by every session."  The
reproduction's unit of sharing is the :class:`~repro.edb.store.
ExternalStore`; everything *per-session* (WAM heap and stacks, internal
dictionary, loader cache) is private to a worker, so workers never
contend on machine state — only on storage, exactly as in the paper's
architecture.

Design (full locking discipline in ``docs/CONCURRENCY.md``):

* Each worker thread owns one :class:`~repro.engine.session.EduceStar`
  built over the shared store.  Queries run under the store's shared
  **read lock**; the store's ``mutation_epoch`` is captured right after
  lock acquisition, which linearizes every query against the writer
  stream (the differential concurrency suite replays the serial oracle
  from exactly these epochs).
* Updates go through :meth:`QueryService.store_program` /
  :meth:`store_relation` / :meth:`assert_external`, which run on a
  dedicated admin session under the exclusive write lock and then
  broadcast **per-procedure** cache invalidation to every worker's
  loader — never a global ``clear()`` stampede; unrelated procedures
  keep their cached code blocks.
* Submissions are tickets on a bounded queue (`ServiceSaturated` when
  full, `ServiceClosed` after shutdown begins).  A ticket may carry a
  deadline; a running query is interrupted cooperatively through the
  WAM's instruction-poll hook, surfacing as
  :exc:`~repro.errors.QueryInterrupted`.
* Service counters are striped per thread
  (:class:`~repro.obs.threadlocal.ThreadLocalCounters`) — no lock on
  the completion hot path — and merge into the service's
  :class:`~repro.obs.registry.MetricsRegistry` beside the shared
  store's I/O counters and every worker's machine/loader counters.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from collections import deque
from types import SimpleNamespace
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from ..engine.session import EduceStar
from ..errors import (QueryInterrupted, ReadOnlyService, ServiceClosed,
                      ServiceSaturated)
from ..obs import MetricsRegistry, ThreadLocalCounters
from ..obs.exposition import render_prometheus
from ..obs.registry import Histogram
from ..obs.tracing import NULL_TRACER, Span

#: A query is either a Prolog goal string (solved on the worker's
#: session, solutions collected eagerly under the read lock) or a
#: callable ``fn(session) -> value`` for programmatic access — e.g. the
#: relational interface or multi-goal transactions-of-reads.
Goal = Union[str, Callable[[EduceStar], object]]

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_CANCELLED = "cancelled"
_TIMEOUT = "timeout"
_FAILED = "failed"


class QueryTicket:
    """A submitted query: future-style handle with cancellation.

    States: ``queued`` → ``running`` → one of ``done`` / ``cancelled``
    / ``timeout`` / ``failed`` (cancellation and deadline expiry can
    also strike while still queued).
    """

    def __init__(self, ticket_id: int, goal: Goal,
                 limit: Optional[int], deadline: Optional[float],
                 explain: bool = False):
        self.id = ticket_id
        self.goal = goal
        self.limit = limit
        self.state = _QUEUED
        #: capture an EXPLAIN plan on the worker before execution
        self.want_explain = explain
        #: the captured :class:`~repro.obs.explain.ExplainPlan` (string
        #: goals only; None for callables or when capture failed)
        self.explain = None
        #: store ``mutation_epoch`` observed under the read lock — the
        #: query saw exactly the first ``store_epoch`` mutations.
        self.store_epoch: Optional[int] = None
        self.value: object = None
        self.error: Optional[BaseException] = None
        self.worker: Optional[str] = None
        #: trace id minted at submission; carried into the worker
        #: session's tracer so every span of this query's execution —
        #: service-synthesised and engine-emitted alike — shares it.
        self.trace_id: Optional[str] = None
        self.queue_wait_ms: Optional[float] = None
        self.execute_ms: Optional[float] = None
        self.total_ms: Optional[float] = None
        #: root of the ticket's span tree (``ticket`` → ``queue_wait``
        #: + ``execute`` → engine spans) when the service traces.
        self.trace: Optional[Span] = None
        self._deadline = deadline          # time.monotonic() basis
        self._submitted_perf: Optional[float] = None
        self._cancel = threading.Event()
        self._finished = threading.Event()

    # ------------------------------------------------------------- consumer

    def cancel(self) -> bool:
        """Request cancellation; returns False if already finished.

        A queued ticket is dropped when a worker dequeues it; a running
        query is interrupted at its next instruction poll.  Because
        cancellation is cooperative, a True return is *advisory* for a
        running query — the worker may still complete it before the
        next poll fires; only :meth:`result` reports the actual
        outcome.  A finish that races this call is detected: if the
        ticket completed between the check and the flag, the return
        value reflects the final state rather than promising a
        cancellation that can no longer happen."""
        if self._finished.is_set():
            return False
        self._cancel.set()
        if self._finished.is_set():
            # The worker finished the ticket concurrently; report
            # whether the cancellation actually took effect.
            return self.state in (_CANCELLED, _TIMEOUT)
        return True

    def done(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> object:
        """Block for the outcome.

        Returns the query's value (list of
        :class:`~repro.wam.machine.Solution` for goal strings, the
        callable's return value otherwise).  Raises
        :exc:`QueryInterrupted` for cancelled/timed-out tickets, the
        original exception for failed ones, :exc:`TimeoutError` if the
        ticket is still unfinished after *timeout* seconds."""
        if not self._finished.wait(timeout):
            raise TimeoutError(f"ticket {self.id} still {self.state}")
        if self.state == _CANCELLED:
            raise QueryInterrupted("cancelled")
        if self.state == _TIMEOUT:
            raise QueryInterrupted("deadline")
        if self.state == _FAILED:
            assert self.error is not None
            raise self.error
        return self.value

    # ------------------------------------------------------------- internal

    def _finish(self, state: str, value: object = None,
                error: Optional[BaseException] = None) -> None:
        self.state = state
        self.value = value
        self.error = error
        self._finished.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTicket(id={self.id}, state={self.state!r})"


class QueryService:
    """N worker sessions over one shared store, behind a bounded queue.

    ``store`` may be an existing :class:`ExternalStore` (e.g. one
    opened from a durable path) or None for a fresh in-memory EDB.
    Extra keyword arguments are forwarded to every worker's
    :class:`EduceStar` constructor (``preunify_depth``, ``index``,
    ...).
    """

    def __init__(self, store=None, workers: int = 4,
                 queue_size: int = 64, poll_interval: int = 512,
                 tracing: bool = False,
                 slow_query_ms: Optional[float] = None,
                 recent_tickets: int = 256,
                 trace_capacity: int = 64,
                 read_only: bool = False,
                 explain: bool = False,
                 profiling: bool = False,
                 profile_interval: Optional[int] = None,
                 **session_kwargs):
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_size < 1:
            raise ValueError("need a positive queue bound")
        #: replica mode (docs/REPLICATION.md): every update entry point
        #: raises :class:`~repro.errors.ReadOnlyService`; queries are
        #: unaffected.  Promotion flips this via :meth:`make_writable`.
        self.read_only = bool(read_only)
        #: trace every ticket end to end (``tracing=True``), or only
        #: capture tickets slower than ``slow_query_ms`` milliseconds.
        #: Either setting enables the worker sessions' tracers per
        #: ticket; with both off the tracing path costs nothing.
        self.trace_tickets = bool(tracing)
        self.slow_query_ms = slow_query_ms
        #: capture an EXPLAIN plan on every string-goal ticket
        #: (per-submit ``explain=`` overrides this default)
        self.explain_tickets = bool(explain)
        #: the admin session is built first: it creates the store when
        #: none is given and is the single session used for updates.
        self.admin = EduceStar(store=store, **session_kwargs)
        self.store = self.admin.store
        self.sessions: List[EduceStar] = [
            EduceStar(store=self.store, **session_kwargs)
            for _ in range(workers)
        ]
        for session in self.sessions:
            session.machine.poll_interval = poll_interval
        # Every EduceStar constructor re-points the *shared* pager's
        # tracer at its own; under concurrency a shared mutable tracer
        # is a race, so the pager reverts to the free null tracer.
        self.store.pager.tracer = NULL_TRACER

        self._queue: "queue.Queue[QueryTicket]" = queue.Queue(queue_size)
        self._queue_bound = queue_size
        self._submit_lock = threading.Lock()
        self._admin_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._shutdown = False
        # Shutdown is idempotent: the first caller does the work, every
        # later (or concurrent) caller waits on this lock and returns.
        self._shutdown_lock = threading.Lock()
        self._shutdown_complete = False

        # Maintained gauges (satellite fix: ``qsize()`` sampled at
        # counters() time is racy and has no memory — a burst that
        # drains before the next scrape leaves no evidence).  Depth is
        # incremented under the submit lock and decremented by the
        # dequeuing worker; the peak is a high-watermark.
        self._gauge_lock = threading.Lock()
        self._depth = 0
        self._depth_peak = 0
        self._inflight = 0

        # Service-level latency histograms; observed once per terminal
        # ticket under a dedicated lock (not the submit lock — finishes
        # must not contend with admissions).
        self._hist_lock = threading.Lock()
        self._queue_wait_hist = Histogram()
        self._ticket_hist = Histogram()

        #: the flight recorder: the shared store's event ring doubles
        #: as the service ring, so storage events (evictions, WAL
        #: poison, recovery) and ticket lifecycle events interleave in
        #: one sequenced stream.
        self.events = self.store.events
        self._service_id = uuid.uuid4().hex[:6]
        self._span_seq = itertools.count(1)
        self._recent: "deque[Dict[str, Any]]" = deque(maxlen=recent_tickets)
        self._traces: "deque[Span]" = deque(maxlen=trace_capacity)
        self._slow: "deque[Dict[str, Any]]" = deque(maxlen=32)
        #: full :meth:`telemetry` aggregate captured by :meth:`shutdown`
        self.final_telemetry: Optional[Dict[str, Any]] = None

        self._stats = ThreadLocalCounters()
        self.metrics = MetricsRegistry()
        self.metrics.attach(self)   # counters() + histograms()
        self.metrics.attach(self.store)   # io_counters: pager + WAL + locks
        for session in self.sessions:
            self.metrics.attach(session.machine)
            self.metrics.attach(session.loader)
            # Strategy-planner decisions and fixpoint work, per worker
            # (counters + the fixpoint-iteration histogram).
            self.metrics.attach(session.datalog)
            # Session-local counters (explain/analyze queries, parsed
            # chars) — not part of the three sources above.
            self.metrics.attach(
                SimpleNamespace(counters=session.local_counters))

        self._threads = [
            threading.Thread(target=self._worker_loop,
                             args=(session,),
                             name=f"educe-worker-{i}", daemon=True)
            for i, session in enumerate(self.sessions)
        ]
        for thread in self._threads:
            thread.start()
        if profiling:
            self.enable_profiling(profile_interval)

    # ------------------------------------------------------------ submission

    def submit(self, goal: Goal, limit: Optional[int] = None,
               timeout: Optional[float] = None,
               explain: Optional[bool] = None) -> QueryTicket:
        """Enqueue one query; returns its ticket.

        *timeout* is the query's deadline in seconds, measured from
        submission (queue wait counts).  *explain* overrides the
        service-wide explain-on-submit default for this ticket: the
        worker captures an EXPLAIN plan (``ticket.explain``) right
        before execution, under the same read lock, so the plan names
        the planner state the query actually ran against.  Raises
        :exc:`ServiceClosed` after shutdown began,
        :exc:`ServiceSaturated` when the bounded queue is full."""
        return self._admit([(goal, limit, timeout)], explain=explain)[0]

    def submit_many(self, goals: Sequence[Goal],
                    limit: Optional[int] = None,
                    timeout: Optional[float] = None) -> List[QueryTicket]:
        """Atomically enqueue a batch: either every goal is admitted
        (in order) or none is and :exc:`ServiceSaturated` is raised."""
        return self._admit([(goal, limit, timeout) for goal in goals])

    def execute(self, goal: Goal, limit: Optional[int] = None,
                timeout: Optional[float] = None) -> object:
        """Submit and block for the result (convenience)."""
        return self.submit(goal, limit=limit, timeout=timeout).result()

    def _admit(self, specs: Iterable[Tuple[Goal, Optional[int],
                                           Optional[float]]],
               explain: Optional[bool] = None) -> List[QueryTicket]:
        specs = list(specs)
        want_explain = (self.explain_tickets if explain is None
                        else bool(explain))
        with self._submit_lock:
            if self._closed:
                self._stats.add("service_rejected", len(specs))
                raise ServiceClosed("service is shutting down")
            # All puts go through this lock, and concurrent gets only
            # free space, so the capacity check cannot over-admit: the
            # maintained depth is decremented *after* a worker's get, so
            # it is always >= qsize() and the put below cannot block.
            with self._gauge_lock:
                free = self._queue_bound - self._depth
            if len(specs) > free:
                self._stats.add("service_rejected", len(specs))
                raise ServiceSaturated(
                    f"queue full ({len(specs)} submitted, {free} free)")
            tickets = []
            now = time.monotonic()
            for goal, limit, timeout in specs:
                deadline = None if timeout is None else now + timeout
                ticket = QueryTicket(next(self._ids), goal, limit,
                                     deadline, explain=want_explain)
                ticket.trace_id = f"tk-{self._service_id}-{ticket.id}"
                ticket._submitted_perf = time.perf_counter()
                with self._gauge_lock:
                    self._depth += 1
                    if self._depth > self._depth_peak:
                        self._depth_peak = self._depth
                self._queue.put_nowait(ticket)
                tickets.append(ticket)
                if self.events.enabled:
                    self.events.record("ticket.admit", ticket=ticket.id,
                                       trace_id=ticket.trace_id,
                                       goal=_goal_label(ticket.goal))
            self._stats.add("service_submitted", len(tickets))
        return tickets

    # --------------------------------------------------------------- updates

    def _check_mutable(self) -> None:
        if self.read_only:
            raise ReadOnlyService(
                "this service serves a read-only replica; "
                "send writes to the primary")

    def make_writable(self) -> None:
        """Lift replica read-only mode (called by replica promotion,
        after the underlying store's own fence is lifted)."""
        self.read_only = False

    def store_program(self, text: str) -> None:
        """Store a program in the shared EDB (exclusive write lock),
        then invalidate exactly the affected procedures everywhere."""
        self._check_mutable()
        with self._admin_lock:
            indicators = self.admin.store_program(text)
        self._broadcast_invalidate(indicators)

    def store_relation(self, name: str, rows: List[tuple],
                       **kwargs) -> None:
        self._check_mutable()
        with self._admin_lock:
            self.admin.store_relation(name, rows, **kwargs)
            arity = len(rows[0])
        self._broadcast_invalidate([(name, arity)])

    def assert_external(self, clause_text: str) -> None:
        self._check_mutable()
        with self._admin_lock:
            indicator = self.admin.assert_external(clause_text)
        self._broadcast_invalidate([indicator])

    def execute_admin(self, goal: Goal,
                      limit: Optional[int] = None) -> object:
        """Run a goal on the admin session — the write path for goals
        that mutate the store, e.g. the materialising relational
        operators (``db_select/3`` and friends, ``db_drop/1``).  On a
        worker those raise :class:`~repro.errors.LockOrderError`
        because the query holds the shared read lock; here the goal
        runs outside any read hold, so its mutators take the exclusive
        write lock normally.  The affected procedures are not known up
        front, so every worker's loader cache is cleared afterwards
        (a schema-level invalidation, not the per-procedure path)."""
        self._check_mutable()
        with self._admin_lock:
            if callable(goal):
                value = goal(self.admin)
            else:
                value = list(self.admin.solve(goal, limit=limit))
        for session in self.sessions:
            session.loader.invalidate()
        return value

    def _broadcast_invalidate(
            self, indicators: Iterable[Tuple[str, int]]) -> None:
        # Correctness never depends on this broadcast — cache keys
        # carry the procedure version — it reclaims worker memory and
        # keeps every loader's cache_epoch advancing with the writer.
        for name, arity in indicators:
            for session in self.sessions:
                session.loader.invalidate(name, arity)

    # -------------------------------------------------------------- shutdown

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the service.

        With ``drain=True`` (default) queued tickets finish first; with
        ``drain=False`` queued tickets are cancelled and only in-flight
        queries run to completion.  *timeout* bounds the total join
        wait; workers still running after it are abandoned (daemon
        threads).

        Idempotent: a second call — including one racing the first from
        another thread — is a no-op that returns once the first
        completes; ``final_telemetry`` is captured exactly once, by the
        call that did the work."""
        with self._shutdown_lock:
            if self._shutdown_complete:
                return
            with self._submit_lock:
                self._closed = True
            if not drain:
                while True:
                    try:
                        ticket = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    with self._gauge_lock:
                        self._depth -= 1
                    self._finish_unqueued(ticket, _CANCELLED,
                                          "service_cancelled")
            self._shutdown = True
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            for thread in self._threads:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                thread.join(remaining)
            # One last look at everything the run produced: counters,
            # histograms, recent tickets, traces, slow queries, the
            # event ring's tail.  Post-mortem surfaces (examples,
            # benchmarks) read this instead of re-sampling a torn-down
            # service.
            self.final_telemetry = self.telemetry()
            self._shutdown_complete = True

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ---------------------------------------------------------- worker side

    def _worker_loop(self, session: EduceStar) -> None:
        while True:
            try:
                ticket = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._shutdown:
                    return
                continue
            with self._gauge_lock:
                self._depth -= 1
            self._run_ticket(session, ticket)

    def _run_ticket(self, session: EduceStar, ticket: QueryTicket) -> None:
        if ticket._cancel.is_set():
            self._finish_unqueued(ticket, _CANCELLED, "service_cancelled")
            return
        now = time.monotonic()
        if ticket._deadline is not None and now >= ticket._deadline:
            self._finish_unqueued(ticket, _TIMEOUT, "service_timeouts")
            return

        dequeued = time.perf_counter()
        queue_wait_ms = (dequeued - ticket._submitted_perf) * 1000.0
        ticket.state = _RUNNING
        ticket.worker = threading.current_thread().name
        with self._gauge_lock:
            self._inflight += 1
        machine = session.machine
        cancel = ticket._cancel
        ticket_deadline = ticket._deadline

        def poll(_machine):
            if cancel.is_set():
                raise QueryInterrupted("cancelled")
            if (ticket_deadline is not None
                    and time.monotonic() >= ticket_deadline):
                raise QueryInterrupted("deadline")

        # Per-ticket tracing: the worker owns its session outright, so
        # flipping its tracer on (and stamping the ticket's trace id on
        # it) is private state — every engine span emitted during this
        # query becomes a child of the synthetic ``execute`` span.
        tracer = session.tracer
        trace_this = self.trace_tickets or self.slow_query_ms is not None
        if trace_this:
            tracer.take_roots()   # drop any stale roots from prior use
            tracer.trace_id = ticket.trace_id
            tracer.enabled = True

        machine.poll_hook = poll
        state = _FAILED
        stat = "service_failed"
        value: object = None
        error: Optional[BaseException] = None
        try:
            # The whole query runs under the shared read lock: a writer
            # can never interleave mid-query, so capturing the epoch
            # here pins the query to one point of the mutation order.
            with self.store.reading():
                ticket.store_epoch = self.store.mutation_epoch
                if ticket.want_explain and isinstance(ticket.goal, str):
                    # Same lock hold as the execution: the plan names
                    # the planner state this very query runs against.
                    try:
                        ticket.explain = session.explain(ticket.goal)
                    except Exception:
                        ticket.explain = None
                if callable(ticket.goal):
                    value = ticket.goal(session)
                else:
                    value = list(session.solve(ticket.goal,
                                               limit=ticket.limit))
        except QueryInterrupted as interrupted:
            if interrupted.reason == "deadline":
                state, stat = _TIMEOUT, "service_timeouts"
            else:
                state, stat = _CANCELLED, "service_cancelled"
        except BaseException as err:  # noqa: BLE001 - recorded on ticket
            state, stat, error = _FAILED, "service_failed", err
        else:
            state, stat = _DONE, "service_completed"
        finally:
            machine.poll_hook = None
            finished = time.perf_counter()
            roots: List[Span] = []
            if trace_this:
                roots = tracer.take_roots()
                tracer.enabled = False
                tracer.trace_id = None
            with self._gauge_lock:
                self._inflight -= 1
            try:
                self._record_terminal(
                    ticket, state, queue_wait_ms,
                    execute_ms=(finished - dequeued) * 1000.0,
                    total_ms=(finished - ticket._submitted_perf) * 1000.0,
                    exec_start=dequeued, roots=roots, traced=trace_this)
            finally:
                # Telemetry strictly before _finish: a consumer woken
                # by result() must find the terminal event and the
                # histogram observation already in telemetry().
                ticket._finish(state, value=value, error=error)
                self._stats.add(stat)

    # ------------------------------------------------------------- telemetry

    def _finish_unqueued(self, ticket: QueryTicket, state: str,
                         stat: str) -> None:
        """Terminal path for tickets that never execute — cancelled or
        expired while queued, or dropped by ``shutdown(drain=False)``.
        They still get a terminal event, a trace (queue wait only) and
        histogram observations, so no admitted ticket ever vanishes
        from telemetry."""
        now = time.perf_counter()
        queue_wait_ms = (now - ticket._submitted_perf) * 1000.0
        try:
            self._record_terminal(ticket, state, queue_wait_ms,
                                  execute_ms=None,
                                  total_ms=queue_wait_ms,
                                  exec_start=None, roots=[],
                                  traced=self.trace_tickets)
        finally:
            ticket._finish(state)
            self._stats.add(stat)

    def _record_terminal(self, ticket: QueryTicket, state: str,
                         queue_wait_ms: float,
                         execute_ms: Optional[float],
                         total_ms: float,
                         exec_start: Optional[float],
                         roots: List[Span], traced: bool) -> None:
        ticket.queue_wait_ms = queue_wait_ms
        ticket.execute_ms = execute_ms
        ticket.total_ms = total_ms
        with self._hist_lock:
            self._queue_wait_hist.observe(queue_wait_ms)
            self._ticket_hist.observe(total_ms)

        trace: Optional[Span] = None
        if traced:
            trace = self._build_trace(ticket, state, queue_wait_ms,
                                      execute_ms, total_ms, exec_start,
                                      roots)
            ticket.trace = trace
            if self.trace_tickets:
                self._traces.append(trace)

        slow = (self.slow_query_ms is not None
                and total_ms >= self.slow_query_ms)
        if self.events.enabled:
            self.events.record(
                _TERMINAL_EVENT[state], ticket=ticket.id,
                trace_id=ticket.trace_id, state=state,
                goal=_goal_label(ticket.goal),
                queue_wait_ms=round(queue_wait_ms, 3),
                total_ms=round(total_ms, 3), worker=ticket.worker)
            if slow:
                self.events.record(
                    "query.slow", ticket=ticket.id,
                    trace_id=ticket.trace_id, state=state,
                    goal=_goal_label(ticket.goal),
                    total_ms=round(total_ms, 3),
                    threshold_ms=self.slow_query_ms)
        if slow:
            self._slow.append({
                "ticket": ticket.id, "trace_id": ticket.trace_id,
                "state": state, "goal": _goal_label(ticket.goal),
                "queue_wait_ms": queue_wait_ms,
                "execute_ms": execute_ms, "total_ms": total_ms,
                "trace": trace,
            })
        self._recent.append({
            "ticket": ticket.id, "trace_id": ticket.trace_id,
            "state": state, "goal": _goal_label(ticket.goal),
            "queue_wait_ms": queue_wait_ms, "execute_ms": execute_ms,
            "total_ms": total_ms, "worker": ticket.worker,
            "store_epoch": ticket.store_epoch,
        })

    def _build_trace(self, ticket: QueryTicket, state: str,
                     queue_wait_ms: float, execute_ms: Optional[float],
                     total_ms: float, exec_start: Optional[float],
                     roots: List[Span]) -> Span:
        """One span tree for the whole ticket: ``ticket`` at the root,
        ``queue_wait`` and ``execute`` as children, with the session's
        own query spans nested under ``execute``."""
        root = Span("ticket", next(self._span_seq), None, {
            "trace_id": ticket.trace_id, "ticket": ticket.id,
            "goal": _goal_label(ticket.goal), "state": state,
            "worker": ticket.worker})
        root.start_s = ticket._submitted_perf
        root.wall_s = total_ms / 1000.0
        wait = Span("queue_wait", next(self._span_seq), root.span_id,
                    {"trace_id": ticket.trace_id})
        wait.start_s = ticket._submitted_perf
        wait.wall_s = queue_wait_ms / 1000.0
        root.children.append(wait)
        if exec_start is not None:
            execute = Span("execute", next(self._span_seq), root.span_id,
                           {"trace_id": ticket.trace_id,
                            "worker": ticket.worker})
            execute.start_s = exec_start
            execute.wall_s = (execute_ms or 0.0) / 1000.0
            execute.children.extend(roots)
            root.children.append(execute)
        return root

    def telemetry(self, events: Optional[int] = 200) -> Dict[str, Any]:
        """One aggregate over everything the service observes: merged
        counters + histograms, recent ticket summaries, retained span
        trees, slow-query captures, and the flight recorder's tail."""
        return {
            "counters": self.metrics.snapshot(),
            "gauge_keys": sorted(self.metrics.gauge_keys()),
            "tickets": list(self._recent),
            "traces": list(self._traces),
            "slow_queries": list(self._slow),
            "events": self.events.tail(events),
        }

    # ------------------------------------------------------------- profiling

    def enable_profiling(self, interval: Optional[int] = None) -> None:
        """Install and enable one sampled WAM profiler per worker
        session (per-machine instances — the merged snapshot sums their
        ``profiler_*`` counters without double counting)."""
        for session in self.sessions:
            session.enable_profiling(interval)

    def disable_profiling(self) -> None:
        for session in self.sessions:
            session.disable_profiling()

    def profile_report(self) -> Dict[str, Any]:
        """Merged per-predicate attribution across every worker's
        profiler — same shape as
        :meth:`~repro.obs.profiler.WamProfiler.report`."""
        preds: Dict[str, Dict[str, Any]] = {}
        folded: Dict[str, int] = {}
        counters: Dict[str, int] = {}
        interval = None
        for session in self.sessions:
            prof = session.profiler
            if prof is None:
                continue
            if interval is None:
                interval = prof.interval
            for rec in prof.attribution(session.cost_model):
                agg = preds.get(rec["predicate"])
                if agg is None:
                    preds[rec["predicate"]] = dict(rec)
                    continue
                for key, val in rec.items():
                    if key != "predicate":
                        agg[key] += val
            for line in prof.folded():
                stack, _, n = line.rpartition(" ")
                folded[stack] = folded.get(stack, 0) + int(n)
            for key, val in prof.counters().items():
                counters[key] = counters.get(key, 0) + val
        records = sorted(preds.values(),
                         key=lambda r: (-r["excl_instr"],
                                        -r["incl_instr"], r["predicate"]))
        return {"kind": "wam_profile", "interval": interval,
                "predicates": records,
                "folded": [f"{stack} {n}"
                           for stack, n in sorted(folded.items())],
                "counters": counters}

    def exposition(self) -> str:
        """The service's merged snapshot in Prometheus text format."""
        return render_prometheus(self.metrics.snapshot(),
                                 gauge_keys=self.metrics.gauge_keys())

    # -------------------------------------------------------------- counters

    def counters(self) -> dict:
        counters = dict.fromkeys((
            "service_submitted", "service_completed", "service_failed",
            "service_cancelled", "service_timeouts", "service_rejected",
        ), 0)
        counters.update(self._stats.counters())
        with self._gauge_lock:
            counters["service_queue_depth"] = self._depth
            counters["service_queue_depth_peak"] = self._depth_peak
            counters["service_inflight"] = self._inflight
        counters["service_workers"] = sum(
            1 for t in self._threads if t.is_alive())
        return counters

    def histograms(self) -> Dict[str, Histogram]:
        return {"service_queue_wait_ms": self._queue_wait_hist,
                "service_ticket_ms": self._ticket_hist}


_TERMINAL_EVENT = {
    _DONE: "ticket.done",
    _TIMEOUT: "ticket.deadline",
    _CANCELLED: "ticket.cancelled",
    _FAILED: "ticket.failed",
}


def _goal_label(goal: Goal) -> str:
    """A short, stable label for event/trace attributes."""
    if isinstance(goal, str):
        text = " ".join(goal.split())
        return text if len(text) <= 80 else text[:77] + "..."
    return getattr(goal, "__name__", None) or repr(goal)
