"""repro.service — the multi-user Educe* kernel (paper §3.1, §3.3).

The paper's Educe* is "a multi-user system: the EDB is shared and the
compiled clause code stored in it is executed by every session".  This
package supplies that kernel for the reproduction: a
:class:`~repro.service.query_service.QueryService` runs N worker
threads, each owning an independent WAM machine (its own heap, stack,
dictionary and loader cache), all reading one shared
:class:`~repro.edb.store.ExternalStore`.

Concurrency control follows the classic DBMS split (documented in
``docs/CONCURRENCY.md``):

* short-term **latches** protect in-memory structures — buffer-pool
  frames (with per-frame pin counts) and the loader cache;
* one long-term **read-write lock** on the store serializes updates
  against in-flight queries: queries run under the shared read lock,
  mutators take the exclusive write lock and bump the store's
  ``mutation_epoch``, which readers capture to linearize results.

Queries are submitted to a bounded work queue as tickets carrying an
optional deadline; a running query is interrupted cooperatively via the
WAM's instruction-poll hook (:exc:`~repro.errors.QueryInterrupted`).
"""

from .query_service import QueryService, QueryTicket

__all__ = ["QueryService", "QueryTicket"]
