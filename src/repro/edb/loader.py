"""The dynamic loader (paper §3.1, component 2).

"This loader, at run time, resolves associative addresses, adds
procedural and other forms of control code to the clausal code stored in
the EDB.  This makes the retrieved code runnable in Educe's virtual
machine."

Given a call to an EDB-stored procedure, the loader:

1. asks the pre-unifier for the typed summaries of the bound argument
   registers and lets the BANG grid filter the per-procedure relation
   (attribute-level pre-unification);
2. fetches the surviving clauses' relative code in one clustered read;
3. resolves external identifiers to internal dictionary identifiers
   (:func:`repro.edb.codec.decode_code`) — interning functors this
   session has not seen;
4. optionally executes the head prefixes for deeper filtering
   (:class:`~repro.edb.preunify.PreUnifier`);
5. splices in control code — try/retry/trust chains and, when more than
   one clause survives, in-memory first-argument indexing — via
   :func:`repro.wam.indexing.build_procedure_code`;
6. caches the runnable block per (procedure, call-pattern, version) so
   the session never re-resolves unchanged code — the paper's "freeze
   the definition of the procedure" behaviour without the poor
   selectivity it complains about.

Facts relations are loaded by generating unit-clause code directly from
the matching tuples, with no compiler involvement.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..analysis.verifier import verify_code
from ..errors import VerifyError
from ..locks import Latch
from ..obs.registry import Histogram
from ..obs.tracing import NULL_TRACER
from ..wam import instructions as I
from ..wam.compiler import CompiledClause
from ..wam.indexing import build_procedure_code
from ..wam.optimizer import build_optimized_block
from .codec import decode_code
from .preunify import PreUnifier
from .store import ExternalStore, StoredClause

#: accepted loader verification levels (docs/ANALYSIS.md)
VERIFY_LEVELS = ("off", "structural", "full")


class DynamicLoader:
    """Per-session loader over one :class:`ExternalStore`."""

    def __init__(self, store: ExternalStore,
                 preunifier: Optional[PreUnifier] = None,
                 index: bool = True, verify: str = "structural",
                 optimizer=None):
        if verify not in VERIFY_LEVELS:
            raise ValueError(
                f"verify={verify!r}: expected one of {VERIFY_LEVELS}")
        self.store = store
        self.preunifier = preunifier or PreUnifier("full")
        self.index = index
        self.verify = verify
        # Shared with the session's machine so wam_opt_* counters
        # aggregate in one place (docs/OPTIMIZER.md); None leaves
        # fetched blocks unoptimized.
        self.optimizer = optimizer
        self.tracer = NULL_TRACER  # session installs its shared tracer
        # The cache is keyed by (name, arity, version, pattern, depth):
        # the stored procedure's *version* rides in the key, so an entry
        # can never serve stale code — invalidation is purely memory
        # reclamation, done per procedure (see :meth:`invalidate`).
        # Versions are monotone per indicator even across drop+recreate
        # (the store keeps a version floor for dropped procedures), so
        # the key never aliases old code with new in workers whose
        # caches were not broadcast-invalidated.
        # Latched because the service's writer path prunes a worker's
        # cache while the worker is querying (docs/CONCURRENCY.md).
        self._cache: Dict[tuple, list] = {}
        self._latch = Latch("loader")
        self.loads = 0
        self.cache_hits = 0
        self.clauses_fetched = 0
        self.clauses_delivered = 0
        self.resolutions = 0  # external->internal address resolutions
        #: monotone: bumped once per invalidation call — the
        #: differential concurrency suite asserts it never goes back
        self.cache_epoch = 0
        self.cache_invalidated_entries = 0
        #: clause records put through the verifier / rejected by it
        self.verify_checks = 0
        self.verify_rejects = 0
        self._verify_hist = Histogram()

    # ------------------------------------------------------------------ API

    def procedure_code(self, machine, name: str, arity: int
                       ) -> Optional[list]:
        """Runnable code block for the current call pattern, or None when
        no stored clause can match."""
        proc = self.store.lookup(name, arity)
        if proc is None:
            return None
        summaries = self.preunifier.summaries_from_registers(machine, arity)
        pattern = tuple(sorted(summaries.items()))
        # The optimization level and the whole-program modes epoch ride
        # in the key: ``:optimize`` / ``:modes apply`` change them at
        # runtime and cached blocks must match the active settings.
        if self.optimizer is None:
            opt_level, modes_epoch = "off", 0
        else:
            opt_level = self.optimizer.level
            modes_epoch = self.optimizer.modes_epoch
        key = (name, arity, proc.version, pattern, self.preunifier.depth,
               opt_level, modes_epoch)
        with self._latch:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
        if cached is not None:
            if self.tracer.enabled:
                self.tracer.event("loader.cache_hit",
                                  procedure=f"{name}/{arity}")
            return cached

        self.loads += 1
        with self.tracer.span("loader.fetch",
                              procedure=f"{name}/{arity}",
                              mode=proc.mode) as span:
            if proc.mode == "facts":
                code = self._load_facts(machine, name, arity, summaries)
            else:
                code = self._load_rules(machine, name, arity, summaries)
            if span is not None:
                span.attrs["bound_args"] = sorted(summaries)
        with self._latch:
            self._cache[key] = code
        return code

    def invalidate(self, name: Optional[str] = None,
                   arity: Optional[int] = None) -> int:
        """Prune cached blocks; returns how many entries were dropped.

        With a procedure indicator, only that procedure's entries go —
        unrelated procedures keep their cached blocks and their
        ``cache_hits`` keep accruing (no global clear() stampede).  With
        no arguments, the whole cache is cleared (schema-level events:
        bulk loads, relation drops).  Correctness never depends on this:
        cache keys carry the stored procedure's version, so stale code
        is unreachable the instant a mutator bumps it.  Each call bumps
        the monotone ``cache_epoch``.
        """
        with self._latch:
            if name is None:
                dropped = len(self._cache)
                self._cache.clear()
            else:
                stale = [key for key in self._cache
                         if key[0] == name and key[1] == arity]
                for key in stale:
                    del self._cache[key]
                dropped = len(stale)
            self.cache_epoch += 1
            self.cache_invalidated_entries += dropped
            return dropped

    def cached_blocks(self, name: str, arity: int) -> list:
        """Snapshot of this procedure's live cache entries, for EXPLAIN.

        Returns ``[(key, code), ...]`` pairs where *key* is the full
        cache key ``(name, arity, version, pattern, depth, opt_level)``.
        Read-only: no counters move and the cache is not touched beyond
        holding the latch for a consistent copy.
        """
        with self._latch:
            return [(key, code) for key, code in self._cache.items()
                    if key[0] == name and key[1] == arity]

    # ------------------------------------------------------------ rules path

    def _load_rules(self, machine, name: str, arity: int,
                    summaries: Dict[int, tuple]) -> list:
        clauses = self.store.fetch_clauses(name, arity, summaries)
        self.clauses_fetched += len(clauses)
        if not clauses:
            return build_procedure_code([])

        proc = self.store.get(name, arity)
        if proc.mode == "source":
            return self._load_source(machine, clauses, name, arity)

        faults = self.store.faults
        with self.tracer.span("codec.resolve",
                              clauses=len(clauses)) as span:
            decoded = []
            resolved = 0
            for sc in clauses:
                resolved += _count_refs(sc.relative_code)
                code = decode_code(
                    sc.relative_code, machine.dictionary,
                    self.store.external_dict)
                decoded.append(faults.clause_record(code))
            self.resolutions += resolved
            if span is not None:
                span.attrs["resolutions"] = resolved

        # Retrieved code is verified *before* anything executes it —
        # the pre-unifier's execution filter runs head prefixes, so the
        # gate has to sit here, between decode and filtering.
        if self.verify != "off":
            self._verify_clauses(machine, name, arity, clauses, decoded)

        survivors = self.preunifier.filter_by_execution(
            machine, clauses, decoded)
        self.clauses_delivered += len(survivors)

        compiled = [
            self._as_compiled(machine, clauses[i], decoded[i])
            for i in survivors
        ]
        block = self._build(machine, compiled, name, arity)
        if self.verify == "full" and compiled:
            started = perf_counter()
            self.verify_checks += 1
            try:
                verify_code(block, arity=arity,
                            dictionary=machine.dictionary, level="full",
                            procedure=f"{name}/{arity}")
            except VerifyError as exc:
                self._reject(name, arity, None, exc)
                raise
            finally:
                self._verify_hist.observe(
                    (perf_counter() - started) * 1000.0)
        return block

    def _verify_clauses(self, machine, name: str, arity: int,
                        clauses: List[StoredClause],
                        decoded: List[list]) -> None:
        """Gate every decoded clause record behind the verifier; a
        rejected record raises :class:`VerifyError` (typed, with rule
        id and offset) and the whole load is quarantined — the block is
        never cached and never executed."""
        level = self.verify
        started = perf_counter()
        try:
            for sc, code in zip(clauses, decoded):
                self.verify_checks += 1
                try:
                    verify_code(code, arity=arity,
                                dictionary=machine.dictionary,
                                level=level,
                                procedure=f"{name}/{arity}")
                except VerifyError as exc:
                    self._reject(name, arity, sc, exc)
                    raise
        finally:
            self._verify_hist.observe(
                (perf_counter() - started) * 1000.0)

    def _reject(self, name: str, arity: int,
                sc: Optional[StoredClause], exc: VerifyError) -> None:
        self.verify_rejects += 1
        events = self.store.events
        if events.enabled:
            events.record("verify.reject",
                          procedure=f"{name}/{arity}",
                          clause_id=(sc.clause_id if sc is not None
                                     else None),
                          rule=exc.rule, offset=exc.offset)

    def _build(self, machine, compiled: List[CompiledClause],
               name: str, arity: int) -> list:
        """Splice control code around the clause set, optimizing (behind
        the verify/fallback gate) when the session's optimizer is on."""
        return build_optimized_block(
            compiled, index=self.index, optimizer=self.optimizer,
            dictionary=machine.dictionary,
            procedure=f"{name}/{arity}")

    def _as_compiled(self, machine, sc: StoredClause,
                     code: list) -> CompiledClause:
        kind, key = _index_key(machine, sc.summaries)
        return CompiledClause(
            code=code, head_name="", arity=len(sc.summaries),
            first_arg_kind=kind, first_arg_key=key,
            arg_keys=tuple(_summary_key(machine, s)
                           for s in sc.summaries))

    # ----------------------------------------------------------- source path

    def _load_source(self, machine, clauses: List[StoredClause],
                     name: str, arity: int) -> list:
        """The Educe baseline inside Educe*: parse stored source text and
        compile it now.  Kept for completeness; the Educe baseline engine
        (:mod:`repro.engine.educe_baseline`) is the primary consumer of
        source mode."""
        compiled = []
        for sc in clauses:
            term = machine.reader.read_term(sc.source)
            compiled.append(machine.compiler.compile_clause(term))
            machine.compile_count += 1
        return self._build(machine, compiled, name, arity)

    # ------------------------------------------------------------ facts path

    def _load_facts(self, machine, name: str, arity: int,
                    summaries: Dict[int, tuple]) -> list:
        """Unit-clause code generated straight from matching tuples —
        unification pushed into the storage engine, code grouped for one
        transfer (§3.2.1)."""
        rows = list(self.store.fetch_facts(
            name, arity, _facts_assignment(summaries)))
        self.clauses_fetched += len(rows)
        self.clauses_delivered += len(rows)
        compiled = []
        for row in rows:
            code = []
            for i, value in enumerate(row):
                code.append(
                    (I.GET_CONSTANT, _value_const(machine, value),
                     ("x", i)))
            code.append((I.PROCEED,))
            kind, key = _fact_index_key(machine, row)
            compiled.append(CompiledClause(
                code=code, head_name=name, arity=arity,
                first_arg_kind=kind, first_arg_key=key,
                arg_keys=tuple(
                    ("constant", _value_const(machine, value))
                    for value in row)))
        return self._build(machine, compiled, name, arity)

    # ------------------------------------------------------------- counters

    def counters(self) -> dict:
        counters = {
            "loads": self.loads,
            "cache_hits": self.cache_hits,
            "clauses_fetched": self.clauses_fetched,
            "clauses_delivered": self.clauses_delivered,
            "resolutions": self.resolutions,
            "preunify_executions": self.preunifier.executions,
            "preunify_rejections": self.preunifier.rejections,
            "cache_epoch": self.cache_epoch,
            "cache_invalidated_entries": self.cache_invalidated_entries,
            "loader_cache_entries": len(self._cache),
            "verify_checks": self.verify_checks,
            "verify_rejects": self.verify_rejects,
        }
        counters.update(self._latch.counters())
        return counters

    def histograms(self) -> dict:
        """Wait-duration histograms (the loader cache latch) plus the
        time spent verifying fetched code (``verify_ms``)."""
        out = dict(self._latch.histograms())
        out["verify_ms"] = self._verify_hist
        return out


def _facts_assignment(summaries: Dict[int, tuple]) -> Dict[int, object]:
    """Summaries → plain values for a facts relation query (atoms are
    stored as their names, numbers as themselves)."""
    out: Dict[int, object] = {}
    for pos, summary in summaries.items():
        if summary[0] in ("atom", "int", "real"):
            out[pos] = summary[1]
        # list/struct summaries cannot appear in atomic facts relations;
        # the call will simply fail during head unification.
    return out


def _value_const(machine, value) -> tuple:
    if isinstance(value, str):
        return ("atom", machine.dictionary.intern(value, 0))
    if isinstance(value, float):
        return ("flt", value)
    return ("int", value)


def _fact_index_key(machine, row: tuple) -> Tuple[str, Optional[tuple]]:
    if not row:
        return ("var", None)
    first = row[0]
    if isinstance(first, str):
        return ("constant", ("atom", machine.dictionary.intern(first, 0)))
    if isinstance(first, float):
        return ("constant", ("flt", first))
    return ("constant", ("int", first))


def _summary_key(machine, s: tuple) -> Tuple[str, Optional[tuple]]:
    """Index metadata of one stored head-argument summary."""
    kind = s[0]
    if kind == "var":
        return ("var", None)
    if kind == "atom":
        if s[1] == "[]":
            return ("nil", ("atom", machine.dictionary.intern("[]", 0)))
        return ("constant", ("atom", machine.dictionary.intern(s[1], 0)))
    if kind == "int":
        return ("constant", ("int", s[1]))
    if kind == "real":
        return ("constant", ("flt", s[1]))
    if kind == "list":
        return ("list", None)
    return ("structure",
            ("fun", machine.dictionary.intern(s[1], s[2])))


def _index_key(machine, summaries: Tuple[tuple, ...]
               ) -> Tuple[str, Optional[tuple]]:
    """First-argument index metadata from stored summaries."""
    if not summaries:
        return ("var", None)
    return _summary_key(machine, summaries[0])


def _count_refs(code: list) -> int:
    count = 0
    for instr in code:
        for operand in instr[1:]:
            if isinstance(operand, tuple) and operand and operand[0] == "ext":
                count += 1
            elif (isinstance(operand, tuple) and len(operand) == 2
                  and operand[0] == "atom"
                  and isinstance(operand[1], tuple)):
                count += 1
    return count
