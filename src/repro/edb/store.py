"""The EDB procedure store (paper §4).

Implements the four structures of §4:

1. **Procedures table** — every external procedure has an entry
   (mirrored in the ``$procedures`` BANG relation and an in-memory map);
2. **External dictionary** — see :mod:`repro.edb.external_dict`;
3. **Per-procedure relation** — one BANG relation per stored procedure,
   one tuple per clause: a ``term`` attribute per head argument (typed,
   indexable on type and value), plus ``clause_id`` and the boolean
   ``code`` attribute;
4. **Clauses relation** — ``(procedure_id, clause_id, relative_code)``;
   the code attribute holds compiled WAM code with external-dictionary
   references.

"Ordinary" relations (conventional DBMS data) are the special case where
``code`` is false and only atomic formats are allowed — stored here in
*facts mode*, giving the relational engine direct set-at-a-time access
while the inference engine sees them as procedures.

Durability (docs/DURABILITY.md)
-------------------------------

The paper's central asset is compiled code *persisted across sessions*
(§3.1) — relative addresses exist precisely so a different session can
reopen the database — so persistence here is crash-safe, not a bare
``pickle.dump``:

* **Checkpoints** (:meth:`ExternalStore.save`) are atomic: the store is
  serialised behind a versioned, checksummed header, written to a temp
  file, fsynced, and renamed over the target.  A reader sees either the
  old checkpoint or the new one, never a torn hybrid, and
  :meth:`ExternalStore.load` rejects damaged files with a
  :class:`~repro.errors.CatalogError` that names the path and the exact
  failure (magic / version / truncation / CRC).
* **Write-ahead log**: once a store has a durable home, every mutating
  operation appends a logical redo record (already-compiled payloads —
  no recompilation at recovery) to ``<path>.wal`` before returning.
  Records are tagged with the checkpoint *era* so a crash between
  checkpoint rename and log reset can never double-apply old records.
* **Recovery** (:meth:`ExternalStore.open`) loads the checkpoint,
  sweeps the pages for corruption (quarantining bad pages instead of
  returning garbage), replays the committed current-era log records,
  truncates any torn log tail, and reports everything in a
  :class:`~repro.edb.recovery.RecoveryReport` (``store.recovery``).
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bang.catalog import AttributeSpec, Catalog, RelationSchema
from ..bang.faults import NULL_FAULTS, FaultInjector
from ..bang.pager import FileDiskStore, Pager
from ..bang.relation import BangRelation
from ..bang.wal import WriteAheadLog
from ..errors import (CatalogError, ExistenceError, ReadOnlyStore,
                      ReproError, TypeError_,
                      WalError)
from ..locks import ReadWriteLock
from ..obs.events import EventRing
from ..obs.registry import Histogram, merge_histogram_maps
from ..obs.tracing import NULL_TRACER
from ..relational.datalog.rules import DatalogRulebase
from ..terms import Atom, Struct, Term, Var, deref
from ..wam.compiler import ClauseCompiler, CompileContext, split_clause
from .codec import encode_code, measure_code
from .external_dict import ExternalDictionary
from .recovery import RecoveryReport

# Checkpoint file header:
#   magic "EDB*" | format version u16 | flags u16 | payload length u64 |
#   payload crc32 u32 | pickled ExternalStore
CHECKPOINT_MAGIC = b"EDB*"
CHECKPOINT_VERSION = 1
_CKPT_HEADER = struct.Struct(">4sHHQI")


def _pages_path(checkpoint_path: str, epoch: int) -> str:
    """Sidecar pages file for a checkpoint (relocates with it)."""
    return f"{checkpoint_path}.pages.{epoch:08d}"


def _fsync_dir(path: str) -> None:
    """fsync the directory so a rename survives power loss (POSIX)."""
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return  # platform without directory fsync
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def summarize_arg(term: Term) -> tuple:
    """Head-argument summary stored in the per-procedure relation."""
    term = deref(term)
    if isinstance(term, Var):
        return ("var",)
    if isinstance(term, Atom):
        return ("atom", term.name)
    if isinstance(term, bool):
        raise TypeError_("term", term)
    if isinstance(term, int):
        return ("int", term)
    if isinstance(term, float):
        return ("real", term)
    assert isinstance(term, Struct)
    if term.indicator == (".", 2):
        return ("list",)
    return ("struct", term.name, term.arity)


@dataclass
class StoredClause:
    """One clause as fetched from the EDB."""

    clause_id: int
    relative_code: list
    summaries: Tuple[tuple, ...]
    has_body: bool
    source: str = ""  # source text, kept only in source mode (Educe)


@dataclass
class StoredProcedure:
    """Procedures-table entry."""

    name: str
    arity: int
    mode: str             # 'rules' | 'facts' | 'source'
    relation: BangRelation
    nclauses: int = 0
    version: int = 0      # bumped on update; invalidates loader caches

    @property
    def key(self) -> str:
        return f"{self.name}/{self.arity}"


class ExternalStore:
    """One External Data Base: catalog + dictionaries + procedure store."""

    def __init__(self, pager: Optional[Pager] = None,
                 bucket_capacity: int = 50):
        self.pager = pager or Pager()
        self.catalog = Catalog(self.pager, bucket_capacity)
        self.external_dict = ExternalDictionary(self.catalog)
        self._procs: Dict[Tuple[str, int], StoredProcedure] = {}
        #: (name, arity) → smallest version a re-created procedure may
        #: use.  Written on every drop, so versions stay monotone per
        #: indicator across drop+recreate cycles and a loader cache key
        #: (which carries the version) can never alias old code with
        #: new — even in workers whose caches were not invalidated.
        self._version_floor: Dict[Tuple[str, int], int] = {}
        self.procs_relation = self.catalog.create(RelationSchema(
            "$procedures",
            [
                AttributeSpec("name", "atom"),
                AttributeSpec("arity", "int"),
                AttributeSpec("mode", "atom"),
            ],
            key_dims=[0, 1],
        ))
        self.clauses_relation = self.catalog.create(RelationSchema(
            "$clauses",
            [
                AttributeSpec("procedure_id", "atom"),
                AttributeSpec("clause_id", "int"),
                AttributeSpec("payload", "term"),
            ],
            key_dims=[0, 1],
        ))
        self.code_bytes_stored = 0
        self.source_bytes_stored = 0

        # --- concurrency state (docs/CONCURRENCY.md) ---------------------
        #: updates serialize against in-flight queries: every mutator
        #: runs under :meth:`writing`, service workers run each query
        #: under :meth:`reading`
        self._rw = ReadWriteLock("store")
        #: bumped once per completed top-level mutation, *before* the
        #: write lock is released — a reader observing epoch E sees
        #: exactly the first E mutations, which is what the differential
        #: concurrency suite linearizes against
        self.mutation_epoch = 0

        # --- durability state (docs/DURABILITY.md) -----------------------
        #: checkpoint path this store is homed at (None: in-memory only)
        self._home: Optional[str] = None
        #: live write-ahead log (attached on save/open)
        self.wal: Optional[WriteAheadLog] = None
        #: checkpoint era: bumped by every save; WAL records carry the
        #: era they were logged under, so recovery can never replay
        #: records that predate the checkpoint it loaded
        self.wal_era = 0
        self.faults: FaultInjector = NULL_FAULTS
        #: set when a WAL append failed after its in-memory mutation was
        #: applied: the live state is ahead of the log, so further
        #: mutations are refused until a checkpoint re-establishes
        #: durability (see :meth:`_check_writable`)
        self._poisoned: Optional[str] = None
        #: RecoveryReport from the ExternalStore.open that produced this
        #: store (None for fresh in-memory stores)
        self.recovery: Optional[RecoveryReport] = None
        #: mutation epoch the loaded checkpoint was taken at (stamped by
        #: ``__getstate__``): a replica bootstrapped from a checkpoint
        #: starts its applied-epoch tracking here
        self.checkpoint_epoch = 0
        #: replication fence: set on follower stores so every local
        #: mutator raises :class:`~repro.errors.ReadOnlyStore`; the
        #: replication apply path and :meth:`promote` bypass it
        self.read_only_reason: Optional[str] = None
        # cumulative durability counters (merged into io_counters)
        self.wal_records_appended = 0
        self.wal_bytes_appended = 0
        self.wal_records_replayed = 0
        self.wal_records_skipped = 0
        self.checkpoints_written = 0
        self.checkpoint_bytes_written = 0

        # --- flight recorder (docs/OBSERVABILITY.md) ---------------------
        #: the store-wide event ring: buffer evictions, WAL poisoning,
        #: recovery; the query service records ticket lifecycle events
        #: into the same ring, so one tail tells the whole story
        self.events = EventRing()
        self.pager.events = self.events

        # --- datalog rulebase (docs/DATALOG.md) --------------------------
        #: surface clauses of rules procedures, kept for the bottom-up
        #: evaluator.  Live-session state (mutated under the write lock,
        #: excluded from checkpoints): a reopened store starts empty and
        #: recursive queries fall back to the WAM until re-stored.
        self.datalog_rules = DatalogRulebase()
        #: true on stores reconstructed from a checkpoint: the live
        #: rulebase above was dropped, so recursive queries against
        #: stored ``rules`` procedures silently fall back to the WAM.
        #: The Datalog engine surfaces that fallback through the
        #: ``datalog_rulebase_missing`` counter (docs/DATALOG.md).
        self.datalog_rules_dropped = False

    # The WAL handle, fault plan and recovery report belong to the live
    # session, not the persisted image.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["wal"] = None
        state["faults"] = None
        state["recovery"] = None
        state["_home"] = None
        # The event ring holds locks and transient history.
        state["events"] = None
        # Locks are runtime (session) state.  The mutation epoch is
        # NOT: it must stay monotone across restarts so that WAL
        # record epochs from different primary processes remain
        # comparable (replica lag is denominated in epochs).
        state["_rw"] = None
        state["mutation_epoch"] = self.mutation_epoch
        # A checkpoint only ever persists consistent state (save()
        # captures the full in-memory image), so the poison flag never
        # travels into the image.
        state["_poisoned"] = None
        # Surface clauses are session state: the checkpoint persists
        # compiled code only (docs/DATALOG.md, "recovered stores").
        state["datalog_rules"] = None
        state["datalog_rules_dropped"] = False
        # Where in the mutation sequence this image was taken: replicas
        # bootstrapping from the checkpoint resume epoch tracking here.
        state["checkpoint_epoch"] = self.mutation_epoch
        # The replication fence is session state (a promoted replica's
        # checkpoint must not re-freeze the store it reloads into).
        state["read_only_reason"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.faults is None:
            self.faults = NULL_FAULTS
        if getattr(self, "_rw", None) is None:
            self._rw = ReadWriteLock("store")
        self.__dict__.setdefault("mutation_epoch", 0)
        self.__dict__.setdefault("_version_floor", {})
        if getattr(self, "events", None) is None:
            self.events = EventRing()
        self.pager.events = self.events
        self.__dict__.setdefault("checkpoint_epoch", 0)
        self.__dict__.setdefault("read_only_reason", None)
        self.__dict__.setdefault("datalog_rules_dropped", False)
        if getattr(self, "datalog_rules", None) is None:
            self.datalog_rules = DatalogRulebase()
            self.datalog_rules_dropped = True
        # Durability counters are session-scoped, like tracer spans: a
        # freshly loaded store reports work *it* did, not history baked
        # into the checkpoint it came from.
        for key in ("wal_records_appended", "wal_bytes_appended",
                    "wal_records_replayed", "wal_records_skipped",
                    "checkpoints_written", "checkpoint_bytes_written"):
            setattr(self, key, 0)

    # ---------------------------------------------------------- concurrency

    @contextmanager
    def reading(self):
        """Shared-mode access: queries run inside this so updates
        serialize against them.  Reentrant — every read entry point of
        the store takes it, and a service worker additionally wraps the
        whole query execution."""
        self._rw.acquire_read()
        try:
            yield self
        finally:
            self._rw.release_read()

    @contextmanager
    def writing(self, bump: bool = True):
        """Exclusive-mode access for mutators.  Reentrant (``store_rules``
        recurses for auxiliary procedures); the mutation epoch is bumped
        once per *outermost* section, before the lock is released, so a
        subsequent reader's observed epoch counts exactly the mutations
        it can see.  ``bump=False`` is for exclusive sections that are
        not logical mutations (checkpointing)."""
        self._rw.acquire_write()
        try:
            yield self
            if bump and self._rw.write_depth() == 1:
                self.mutation_epoch += 1
        finally:
            self._rw.release_write()

    # ------------------------------------------------------------- metadata

    def lookup(self, name: str, arity: int) -> Optional[StoredProcedure]:
        with self.reading():
            return self._procs.get((name, arity))

    def get(self, name: str, arity: int) -> StoredProcedure:
        proc = self.lookup(name, arity)
        if proc is None:
            raise ExistenceError("external procedure", f"{name}/{arity}")
        return proc

    def procedures(self) -> List[StoredProcedure]:
        with self.reading():
            return list(self._procs.values())

    def _register(self, proc: StoredProcedure) -> None:
        if (proc.name, proc.arity) in self._procs:
            raise CatalogError(f"{proc.key} already stored")
        floor = self._version_floor.get((proc.name, proc.arity))
        if floor is not None and proc.version < floor:
            proc.version = floor
        self._procs[(proc.name, proc.arity)] = proc
        self.procs_relation.insert((proc.name, proc.arity, proc.mode))

    def _proc_relation_schema(self, name: str, arity: int) -> RelationSchema:
        attrs = [AttributeSpec(f"arg{i + 1}", "term") for i in range(arity)]
        attrs.append(AttributeSpec("clause_id", "int"))
        attrs.append(AttributeSpec("code", "int"))  # boolean flag
        key_dims = list(range(arity)) if arity else [arity]  # clause_id key
        return RelationSchema(f"$p${name}/{arity}", attrs, key_dims=key_dims)

    # ------------------------------------------------------- rules (compiled)

    def store_rules(self, name: str, arity: int, clauses: Sequence[Term],
                    context: CompileContext) -> StoredProcedure:
        """Compile *clauses* and store them as relative code (§3.1).

        Auxiliary procedures synthesised for control constructs are
        stored recursively, so the EDB is self-contained.
        """
        with self.writing():
            self._check_writable()
            aux_sink: List[Tuple[str, int, list]] = []
            store_ctx = CompileContext(
                context.dictionary,
                define_procedure=lambda n, a, c: aux_sink.append((n, a, c)))
            compiler = ClauseCompiler(store_ctx)

            payloads: List[dict] = []
            for clause in clauses:
                compiled = compiler.compile_clause(clause)
                head, body = split_clause(clause)
                head_args = head.args if isinstance(head, Struct) else ()
                relative = encode_code(compiled.code, context.dictionary,
                                       self.external_dict)
                payloads.append({
                    "code": relative,
                    "summaries": tuple(summarize_arg(a) for a in head_args),
                    "has_body": bool(body),
                })
            proc = self._apply_rules(name, arity, payloads)
            self.datalog_rules.set((name, arity), clauses)
            # The surface clauses ride the redo record so replay — WAL
            # recovery and replica apply alike — restores the rulebase,
            # keeping the bottom-up path available after a crash or on
            # a follower.  (A checkpoint alone still drops it: surface
            # terms are live-session state, not part of the image.)
            self._log({"op": "rules", "name": name, "arity": arity,
                       "clauses": payloads,
                       "surface": list(clauses),
                       "ext": self._ext_functors(
                           p["code"] for p in payloads)})

            for aux_name, aux_arity, aux_clauses in aux_sink:
                self.store_rules(aux_name, aux_arity, aux_clauses, context)
            return proc

    def _apply_rules(self, name: str, arity: int,
                     payloads: Sequence[dict]) -> StoredProcedure:
        """Install already-compiled rule clauses (store path and WAL
        replay share this — recovery never recompiles)."""
        relation = self.catalog.create(self._proc_relation_schema(name, arity))
        proc = StoredProcedure(name, arity, "rules", relation)
        self._register(proc)
        for cid, payload in enumerate(payloads):
            summaries = tuple(payload["summaries"])
            relation.insert(summaries + (cid, 1))
            self.code_bytes_stored += measure_code(payload["code"])
            # The payload rides as a non-key attribute: it is pickled
            # with its page, so code size and transfer are page-accounted.
            self.clauses_relation.insert((proc.key, cid, StoredClause(
                clause_id=cid, relative_code=payload["code"],
                summaries=summaries, has_body=payload["has_body"])))
        proc.nclauses = len(payloads)
        return proc

    def fetch_clauses(self, name: str, arity: int,
                      assignment: Optional[Dict[int, tuple]] = None
                      ) -> List[StoredClause]:
        """Candidate clauses whose head-argument summaries are compatible
        with *assignment* (``{arg_index: summary}``) — the attribute-level
        half of pre-unification, answered by the BANG grid."""
        with self.reading():
            proc = self.get(name, arity)
            assignment = assignment or {}
            if proc.mode == "facts":
                raise CatalogError(f"{proc.key} is a facts relation")
            rows = proc.relation.query(dict(assignment))
            wanted = {row[arity] for row in rows}
            # One clustered partial-match fetch for the whole procedure:
            # the deterministic collect-at-once of §3.2.1.
            fetched = [
                row[2] for row in self.clauses_relation.query({0: proc.key})
                if row[1] in wanted
            ]
            fetched.sort(key=lambda sc: sc.clause_id)
            return fetched

    def clause_count_pages(self, name: str, arity: int) -> int:
        with self.reading():
            proc = self.get(name, arity)
            return self.clauses_relation.pages_for({0: proc.key})

    # ----------------------------------------------------------- facts mode

    def store_facts(self, name: str, arity: int,
                    rows: Sequence[tuple],
                    types: Optional[Sequence[str]] = None,
                    key_dims: Optional[Sequence[int]] = None
                    ) -> StoredProcedure:
        """Store an ordinary relation (code attribute false, atomic
        formats only).  ``key_dims`` selects the indexed attributes
        (default: all — full partial-match clustering)."""
        with self.writing():
            self._check_writable()
            if types is None:
                types = _infer_types(rows, arity)
            rows = [tuple(row) for row in rows]
            key_dims = list(key_dims) if key_dims is not None else None
            proc = self._apply_facts(name, arity, rows, list(types),
                                     key_dims)
            self._log({"op": "facts", "name": name, "arity": arity,
                       "rows": rows, "types": list(types),
                       "key_dims": key_dims})
            return proc

    def _apply_facts(self, name: str, arity: int, rows: Sequence[tuple],
                     types: Sequence[str],
                     key_dims: Optional[Sequence[int]]) -> StoredProcedure:
        attrs = [AttributeSpec(f"arg{i + 1}", t)
                 for i, t in enumerate(types)]
        schema = RelationSchema(f"$p${name}/{arity}", attrs,
                                key_dims=list(key_dims)
                                if key_dims is not None else None)
        relation = self.catalog.create(schema)
        proc = StoredProcedure(name, arity, "facts", relation)
        self._register(proc)
        proc.nclauses = relation.insert_many(rows)
        return proc

    def materialise_facts(self, name: str, arity: int,
                          rows: Sequence[tuple],
                          types: Optional[Sequence[str]] = None,
                          key_dims: Optional[Sequence[int]] = None
                          ) -> StoredProcedure:
        """Replace-or-create a facts relation in **one** exclusive
        section — the relational operators' materialisation path
        (derived relations are replaceable, unlike :meth:`store_facts`
        which refuses to overwrite).  A concurrent reader sees either
        the old relation or the new one, never the gap between drop
        and store; a service worker holding the shared read lock gets
        :class:`~repro.errors.LockOrderError` before anything mutates.
        """
        with self.writing():
            self._check_writable()
            if types is None:
                types = _infer_types(rows, arity)
            rows = [tuple(row) for row in rows]
            key_dims = list(key_dims) if key_dims is not None else None
            self._apply_drop(name, arity)
            proc = self._apply_facts(name, arity, rows, list(types),
                                     key_dims)
            self._log({"op": "materialise", "name": name, "arity": arity,
                       "rows": rows, "types": list(types),
                       "key_dims": key_dims})
            return proc

    def fetch_facts(self, name: str, arity: int,
                    assignment: Optional[Dict[int, Any]] = None
                    ) -> List[tuple]:
        """Matching tuples, materialised *inside* the read lock — a lazy
        iterator would keep reading pages after the lock was released,
        racing any concurrent update."""
        with self.reading():
            proc = self.get(name, arity)
            if proc.mode != "facts":
                raise CatalogError(f"{proc.key} is not a facts relation")
            if assignment:
                return list(proc.relation.query(dict(assignment)))
            return list(proc.relation.scan())

    def relation_of(self, name: str, arity: int) -> BangRelation:
        """Direct relational-engine access to a facts relation — the
        goal-oriented evaluation path of §4."""
        return self.get(name, arity).relation

    # ---------------------------------------------------------- source mode

    def store_source(self, name: str, arity: int,
                     clauses: Sequence[Term]) -> StoredProcedure:
        """Store rules as *source text* — the Educe predecessor's scheme
        (§2.3), kept as the baseline the paper measures against."""
        with self.writing():
            self._check_writable()
            from ..lang.writer import format_clause
            payloads: List[dict] = []
            for clause in clauses:
                head, body = split_clause(clause)
                head_args = head.args if isinstance(head, Struct) else ()
                payloads.append({
                    "source": format_clause(clause),
                    "summaries": tuple(summarize_arg(a) for a in head_args),
                    "has_body": bool(body),
                })
            proc = self._apply_source(name, arity, payloads)
            self._log({"op": "source", "name": name, "arity": arity,
                       "clauses": payloads})
            return proc

    def _apply_source(self, name: str, arity: int,
                      payloads: Sequence[dict]) -> StoredProcedure:
        relation = self.catalog.create(self._proc_relation_schema(name, arity))
        proc = StoredProcedure(name, arity, "source", relation)
        self._register(proc)
        for cid, payload in enumerate(payloads):
            summaries = tuple(payload["summaries"])
            relation.insert(summaries + (cid, 0))
            self.source_bytes_stored += len(payload["source"])
            self.clauses_relation.insert((proc.key, cid, StoredClause(
                clause_id=cid, relative_code=[],
                summaries=summaries, has_body=payload["has_body"],
                source=payload["source"])))
        proc.nclauses = len(payloads)
        return proc

    # -------------------------------------------------------------- updates

    def assert_clause(self, name: str, arity: int, clause: Term,
                      context: CompileContext) -> None:
        """Append a clause to a stored rules procedure."""
        with self.writing():
            self._check_writable()
            proc = self.get(name, arity)
            if proc.mode == "facts":
                head, _ = split_clause(clause)
                values = _fact_values(head)
                self._apply_assert_fact(name, arity, values)
                self._log({"op": "assert_fact", "name": name,
                           "arity": arity, "values": values})
                return
            compiler = ClauseCompiler(context)
            compiled = compiler.compile_clause(clause)
            head, body = split_clause(clause)
            head_args = head.args if isinstance(head, Struct) else ()
            relative = encode_code(compiled.code, context.dictionary,
                                   self.external_dict)
            payload = {
                "code": relative,
                "summaries": tuple(summarize_arg(a) for a in head_args),
                "has_body": bool(body),
            }
            self._apply_assert_rule(name, arity, payload)
            self.datalog_rules.add((name, arity), clause)
            self._log({"op": "assert_rule", "name": name, "arity": arity,
                       "clause": payload, "surface": clause,
                       "ext": self._ext_functors([payload["code"]])})

    def _apply_assert_fact(self, name: str, arity: int,
                           values: tuple) -> None:
        proc = self.get(name, arity)
        proc.relation.insert(values)
        proc.nclauses += 1
        proc.version += 1

    def _apply_assert_rule(self, name: str, arity: int,
                           payload: dict) -> None:
        proc = self.get(name, arity)
        summaries = tuple(payload["summaries"])
        existing = [
            row[1] for row in self.clauses_relation.query({0: proc.key})
        ]
        cid = max(existing, default=-1) + 1
        proc.relation.insert(summaries + (cid, 1))
        self.code_bytes_stored += measure_code(payload["code"])
        self.clauses_relation.insert((proc.key, cid, StoredClause(
            clause_id=cid, relative_code=payload["code"],
            summaries=summaries, has_body=payload["has_body"])))
        proc.nclauses += 1
        proc.version += 1

    def retract_clause(self, name: str, arity: int, clause_id: int) -> None:
        with self.writing():
            self._check_writable()
            # Retraction is clause_id-based; rather than mirror the id
            # bookkeeping, stop tracking the procedure — it simply goes
            # back to the WAM path.
            self.datalog_rules.drop((name, arity))
            self._apply_retract(name, arity, clause_id)
            self._log({"op": "retract", "name": name, "arity": arity,
                       "clause_id": clause_id})

    def _apply_retract(self, name: str, arity: int, clause_id: int) -> None:
        proc = self.get(name, arity)
        proc.relation.delete_where({proc.arity: clause_id})
        self.clauses_relation.delete_where({0: proc.key, 1: clause_id})
        proc.nclauses -= 1
        proc.version += 1

    def drop_procedure(self, name: str, arity: int) -> bool:
        """Remove a stored procedure entirely (``db_drop/1``).

        Runs under the exclusive write lock like every mutator — a
        service worker calling this from inside a query (shared read
        lock held) gets :class:`~repro.errors.LockOrderError` instead
        of silently mutating under concurrent readers.  Returns False
        when the procedure does not exist (nothing is mutated and the
        epoch is not bumped)."""
        if self.lookup(name, arity) is None:
            # Fast path — also keeps db_drop of a missing relation a
            # plain failure (not LockOrderError) under a read hold.
            # Re-checked under the write lock before mutating.
            return False
        with self.writing(bump=False):
            if (name, arity) not in self._procs:
                return False
            self._check_writable()
            self._apply_drop(name, arity)
            self._log({"op": "drop", "name": name, "arity": arity})
            if self._rw.write_depth() == 1:
                self.mutation_epoch += 1
            return True

    def _apply_drop(self, name: str, arity: int) -> bool:
        proc = self._procs.pop((name, arity), None)
        if proc is None:
            return False
        self.datalog_rules.drop((name, arity))
        self.catalog.drop(proc.relation.schema.name)
        self.procs_relation.delete_where({0: name, 1: arity})
        if proc.mode != "facts":
            self.clauses_relation.delete_where({0: proc.key})
        # A re-created procedure must never reuse a version this one
        # served under: loader cache keys carry the version.
        self._version_floor[(name, arity)] = proc.version + 1
        return True

    # ------------------------------------------------------ write-ahead log

    def _check_writable(self) -> None:
        """Refuse mutations while the live state is ahead of the log.

        Set by :meth:`_log` when a WAL append fails after its in-memory
        mutation was applied: logging further operations on top of
        unlogged state would make recovery replay against a state that
        never existed on disc (e.g. an ``assert_rule`` for a procedure
        whose ``rules`` record was never logged).  A successful
        :meth:`save` — which checkpoints the full in-memory image —
        clears the flag.
        """
        if self.read_only_reason is not None:
            raise ReadOnlyStore(self.read_only_reason)
        if self._poisoned is not None:
            raise WalError(
                "EDB store is read-only: a WAL append failed "
                f"({self._poisoned}) and the in-memory state is ahead "
                "of the log; save() a fresh checkpoint to resume updates")

    def _log(self, record: dict) -> None:
        """Durably append one redo record (no-op without a WAL home).

        Called *after* the in-memory/page mutation succeeded: operations
        are atomic at record granularity — a crash before the append
        simply loses the whole operation, never half of it.  If the
        append *fails* while the session lives on (disc full, EIO), the
        in-memory mutation has no durable redo record, so the store is
        poisoned: subsequent mutations raise
        :class:`~repro.errors.WalError` until a checkpoint
        re-establishes durability.
        """
        if self.wal is None:
            return
        record["era"] = self.wal_era
        # The epoch this mutation will commit as (the outermost writing()
        # section bumps once on exit, so nested auxiliary records share
        # the outer mutation's epoch).  Replicas track their applied
        # position in these units, which is what lag gauges and the
        # differential suite's per-epoch comparisons are denominated in.
        record["epoch"] = self.mutation_epoch + 1
        payload = pickle.dumps(record, protocol=4)
        try:
            self.wal.append(payload)
        except BaseException as exc:
            self._poisoned = f"{type(exc).__name__}: {exc}"
            if self.events.enabled:
                self.events.record("wal.poison", op=record.get("op"),
                                   error=self._poisoned)
            raise
        self.wal_records_appended += 1
        self.wal_bytes_appended += len(payload)

    def _ext_functors(self, codes) -> List[Tuple[str, int]]:
        """(name, arity) of every external-dictionary reference in the
        given relative-code blocks; logged with the record so replay can
        re-intern them even when the checkpoint predates them."""
        refs: set = set()
        for code in codes:
            _collect_ext_refs(code, refs)
        out = []
        for ext_id in sorted(refs):
            out.append(self.external_dict.resolve(ext_id))
        return out

    def _replay(self, record: dict) -> None:
        """Re-apply one committed WAL record (recovery path)."""
        op = record.get("op")
        for name, arity in record.get("ext", ()):
            self.external_dict.intern(name, arity)
        if op == "rules":
            self._apply_rules(record["name"], record["arity"],
                              record["clauses"])
            # Records carry the surface clauses (older logs may not):
            # replaying one re-tracks the procedure, so the bottom-up
            # evaluator works after recovery and on replicas.
            surface = record.get("surface")
            if surface is not None:
                self.datalog_rules.set(
                    (record["name"], record["arity"]), surface)
        elif op == "source":
            self._apply_source(record["name"], record["arity"],
                               record["clauses"])
        elif op == "facts":
            self._apply_facts(record["name"], record["arity"],
                              record["rows"], record["types"],
                              record["key_dims"])
        elif op == "assert_rule":
            self._apply_assert_rule(record["name"], record["arity"],
                                    record["clause"])
            surface = record.get("surface")
            if surface is not None:
                # add() only extends procedures the rulebase tracks —
                # identical to the live assert path's semantics.
                self.datalog_rules.add(
                    (record["name"], record["arity"]), surface)
        elif op == "assert_fact":
            self._apply_assert_fact(record["name"], record["arity"],
                                    tuple(record["values"]))
        elif op == "retract":
            # Mirror the live path: retraction stops tracking the
            # procedure (it goes back to the WAM).
            self.datalog_rules.drop((record["name"], record["arity"]))
            self._apply_retract(record["name"], record["arity"],
                                record["clause_id"])
        elif op == "drop":
            self._apply_drop(record["name"], record["arity"])
        elif op == "materialise":
            self._apply_drop(record["name"], record["arity"])
            self._apply_facts(record["name"], record["arity"],
                              record["rows"], record["types"],
                              record["key_dims"])
        else:
            raise CatalogError(f"unknown WAL record op {op!r}")

    # ----------------------------------------------------------- replication

    def freeze(self, reason: str) -> None:
        """Fence this store read-only (a follower applying a primary's
        WAL stream).  Every local mutator raises
        :class:`~repro.errors.ReadOnlyStore` until :meth:`promote`
        lifts the fence; reads are unaffected."""
        self.read_only_reason = reason

    def apply_replicated(self, record: dict) -> None:
        """Apply one decoded primary WAL record on a follower.

        Runs under the exclusive write lock with the normal epoch bump,
        so concurrent read-only queries on this replica linearize
        against replicated mutations exactly as they would against
        local ones (and loader caches, keyed on procedure versions,
        stay correct without any invalidation broadcast).  Bypasses the
        read-only fence — that fence is for *local* mutators.  Era
        fencing is the caller's job (:mod:`repro.replication`): this
        method trusts the record.
        """
        with self.writing():
            self._replay(record)
            self.wal_records_replayed += 1

    def promote(self, path: str) -> None:
        """Promote a follower to primary.

        Lifts the read-only fence and checkpoints the full in-memory
        image to *path* — which bumps the checkpoint era and starts a
        fresh WAL generation this store owns.  Stale replicas that
        re-attach to *path* bootstrap from the new-era checkpoint, so
        the old primary's log can never be double-applied here (the
        era fence rejects it).
        """
        self.read_only_reason = None
        self.save(path)

    # ----------------------------------------------------------- persistence

    def save(self, path: str) -> None:
        """Atomically checkpoint the whole EDB to *path*.

        This is what relative addresses buy (§3.1): the stored clause
        code references the external dictionary only, so a *different*
        session — with a fresh internal dictionary whose identifiers
        bear no relation to this one's — can load the file and run the
        code after plain address resolution.

        The checkpoint is crash-safe: serialised behind a versioned,
        checksummed header into ``path + ".tmp"``, fsynced, then renamed
        over *path*.  File-backed stores first compact their pages into
        a fresh epoch sidecar (``path + ".pages.NNNNNNNN"``).  On
        success the store is *homed* at *path*: a fresh WAL generation
        starts and subsequent mutations are logged for replay.

        Runs under the write lock (non-bumping): the checkpoint excludes
        concurrent queries while it compacts pages and reshapes the
        WAL, but is not itself a logical mutation.
        """
        with self.writing(bump=False):
            self._save_locked(path)

    def _save_locked(self, path: str) -> None:
        self.pager.flush()
        disk = self.pager.disk
        faults = self.faults
        old_pages_path = None
        if isinstance(disk, FileDiskStore):
            old_pages_path = disk.path
            new_epoch = disk.epoch + 1
            disk.compact_to(_pages_path(path, new_epoch), new_epoch)

        # The checkpoint *image* carries the next era, but the live
        # store commits the bump only once os.replace has made that
        # image durable.  If any write up to the rename fails (disc
        # full during the temp-file write), the session keeps logging
        # under the era of the checkpoint actually on disc, so those
        # acknowledged records still replay at recovery instead of
        # being fenced off as stale.
        new_era = self.wal_era + 1
        self.wal_era = new_era
        try:
            payload = pickle.dumps(self, protocol=4)
        finally:
            self.wal_era = new_era - 1
        header = _CKPT_HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, 0,
                                   len(payload), zlib.crc32(payload))
        tmp = path + ".tmp"
        with open(tmp, "wb", buffering=0) as f:
            half = len(payload) // 2
            faults.write(f, header)
            faults.write(f, payload[:half])
            faults.crash_point("checkpoint.write.mid")
            faults.write(f, payload[half:])
            os.fsync(f.fileno())
        faults.crash_point("checkpoint.pre_rename")
        os.replace(tmp, path)
        self.wal_era = new_era
        faults.crash_point("checkpoint.post_rename")
        _fsync_dir(os.path.dirname(os.path.abspath(path)))

        # The checkpoint is durable: start a fresh log generation.  (If
        # we crash before the reset, the era tag already fences the old
        # records off — recovery skips them as stale.)
        wal_path = path + ".wal"
        if self.wal is not None and self.wal.path != wal_path:
            self.wal.close()
            self.wal = None
        if self.wal is None:
            self.wal = WriteAheadLog(wal_path, faults=faults)
        self.wal.truncate()
        # Drop the superseded epoch sidecar — but only when it belongs
        # to *this* checkpoint base.  After a save-as to a new path, the
        # old home's checkpoint still references its own pages file.
        if (old_pages_path is not None
                and old_pages_path.startswith(path + ".pages.")
                and old_pages_path != disk.path):
            try:
                os.remove(old_pages_path)
            except OSError:
                pass
        self._home = path
        # The checkpoint captured the full in-memory state, including
        # any mutation whose redo record failed to log: durability is
        # re-established, so a poisoned store becomes writable again.
        self._poisoned = None
        self.checkpoints_written += 1
        self.checkpoint_bytes_written += len(header) + len(payload)

    @staticmethod
    def load(path: str) -> "ExternalStore":
        """Reopen a saved EDB checkpoint (no WAL replay — use
        :meth:`open` for full crash recovery).

        Rejects anything that is not a healthy checkpoint with a
        :class:`~repro.errors.CatalogError` naming the path and the
        failure: bad magic, unsupported version, truncation, checksum
        mismatch, or an undecodable payload.
        """
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except FileNotFoundError:
            raise CatalogError(f"{path}: no such EDB checkpoint") from None
        if len(blob) < _CKPT_HEADER.size:
            raise CatalogError(
                f"{path}: not a saved EDB (file shorter than the "
                f"{_CKPT_HEADER.size}-byte checkpoint header)")
        magic, version, _flags, length, crc = _CKPT_HEADER.unpack(
            blob[:_CKPT_HEADER.size])
        if magic != CHECKPOINT_MAGIC:
            raise CatalogError(
                f"{path}: not a saved EDB (bad magic {magic!r})")
        if version != CHECKPOINT_VERSION:
            raise CatalogError(
                f"{path}: unsupported EDB checkpoint version {version} "
                f"(this build reads version {CHECKPOINT_VERSION})")
        payload = blob[_CKPT_HEADER.size:]
        if len(payload) != length:
            raise CatalogError(
                f"{path}: truncated EDB checkpoint "
                f"({len(payload)} of {length} payload bytes)")
        computed = zlib.crc32(payload)
        if computed != crc:
            raise CatalogError(
                f"{path}: EDB checkpoint checksum mismatch "
                f"(stored {crc:#010x}, computed {computed:#010x})")
        try:
            store = pickle.loads(payload)
        except Exception as exc:
            raise CatalogError(
                f"{path}: undecodable EDB checkpoint payload "
                f"({type(exc).__name__}: {exc})") from exc
        if not isinstance(store, ExternalStore):
            raise CatalogError(f"{path} is not a saved EDB")
        disk = store.pager.disk
        if isinstance(disk, FileDiskStore):
            pages = _pages_path(path, disk.epoch)
            if not os.path.exists(pages):
                raise CatalogError(
                    f"{path}: missing pages sidecar {pages}")
            disk.reattach(pages)
        return store

    @classmethod
    def open(cls, path: str, *, create: bool = True,
             faults: Optional[FaultInjector] = None,
             tracer=None, verify_pages: bool = True) -> "ExternalStore":
        """Open a durable EDB at *path*, performing crash recovery.

        * no file and ``create=True`` → a fresh file-backed
          (:class:`~repro.bang.pager.FileDiskStore`) EDB with an initial
          checkpoint and an empty WAL;
        * otherwise → load the checkpoint, verify every page
          (quarantining corrupt ones), replay the committed current-era
          WAL records, and truncate any torn log tail.

        The resulting store carries a
        :class:`~repro.edb.recovery.RecoveryReport` in ``.recovery``.
        """
        faults = faults or NULL_FAULTS
        tracer = tracer or NULL_TRACER
        if not os.path.exists(path):
            if not create:
                raise CatalogError(
                    f"{path}: no such EDB (and create=False)")
            disk = FileDiskStore(_pages_path(path, 1), faults=faults)
            store = cls(pager=Pager(disk=disk))
            store.faults = faults
            store.save(path)
            store.recovery = RecoveryReport(path=path, created=True)
            store.events.record("store.recovery", path=path, created=True)
            return store

        store = cls.load(path)
        store.faults = faults
        disk = store.pager.disk
        if isinstance(disk, FileDiskStore):
            disk.faults = faults
        report = RecoveryReport(path=path)
        report.checkpoint_bytes = max(
            0, os.path.getsize(path) - _CKPT_HEADER.size)
        with tracer.span("recovery", path=path):
            if verify_pages:
                report.pages_scanned = disk.page_count
                report.pages_quarantined = disk.verify_all()
            wal = WriteAheadLog(path + ".wal", faults=faults)
            # Incremental replay: one committed frame at a time, so
            # recovery memory is bounded by the largest record, not the
            # whole log.  After a replay error the cursor is still
            # drained (without applying) to find the true good end.
            cursor = wal.scan_from(0)
            stopped = False
            for payload in cursor:
                report.wal_records_seen += 1
                if stopped:
                    continue
                try:
                    record = pickle.loads(payload)
                except Exception as exc:
                    report.errors.append(
                        f"undecodable WAL record ({type(exc).__name__}: "
                        f"{exc}); replay stopped")
                    stopped = True
                    continue
                era = record.get("era")
                if not isinstance(era, int) or era > store.wal_era:
                    # A record from *after* the loaded checkpoint's era
                    # should be impossible (save commits the era bump
                    # only once the checkpoint is durable); it means
                    # the log and checkpoint diverged, so refuse to
                    # guess rather than silently drop committed writes.
                    report.errors.append(
                        f"WAL record era {era!r} is ahead of checkpoint "
                        f"era {store.wal_era}; replay stopped")
                    stopped = True
                    continue
                if era < store.wal_era:
                    report.wal_records_stale += 1
                    store.wal_records_skipped += 1
                    continue
                op = str(record.get("op"))
                try:
                    store._replay(record)
                except ReproError as exc:
                    report.errors.append(
                        f"replay of {op!r} failed ({exc}); replay stopped")
                    stopped = True
                    continue
                report.ops_replayed[op] = report.ops_replayed.get(op, 0) + 1
                report.wal_records_replayed += 1
                store.wal_records_replayed += 1
                if tracer.enabled:
                    tracer.event("wal.replay", op=op)
            report.wal_torn_tail = cursor.torn
            report.wal_good_end = cursor.offset
            if cursor.torn:
                # Drop the uncommitted tail so future appends never sit
                # behind unreadable garbage.  (A *live tailer* seeing a
                # torn tail must wait and retry instead — truncation is
                # only ever the crashed owner's recovery action.)
                wal.truncate_to(cursor.offset)
            wal.next_lsn = cursor.next_lsn
            store.wal = wal
            store._home = path
        cls._clean_leftovers(path, disk)
        store.recovery = report
        store.events.record(
            "store.recovery", path=path, created=False,
            wal_records_replayed=report.wal_records_replayed,
            wal_records_stale=report.wal_records_stale,
            wal_torn_tail=report.wal_torn_tail,
            pages_quarantined=len(report.pages_quarantined),
            errors=len(report.errors))
        return store

    @staticmethod
    def _clean_leftovers(path: str, disk) -> None:
        """Remove debris from interrupted checkpoints: the temp file and
        pages sidecars from epochs the loaded checkpoint does not use."""
        try:
            if os.path.exists(path + ".tmp"):
                os.remove(path + ".tmp")
            if isinstance(disk, FileDiskStore):
                directory = os.path.dirname(os.path.abspath(path))
                prefix = os.path.basename(path) + ".pages."
                for entry in os.listdir(directory):
                    if not entry.startswith(prefix):
                        continue
                    full = os.path.join(directory, entry)
                    if os.path.abspath(full) != os.path.abspath(disk.path):
                        os.remove(full)
        except OSError:
            pass

    # ------------------------------------------------------------- counters

    def io_counters(self) -> dict:
        counters = self.pager.io_counters()
        counters.update({
            "wal_records_appended": self.wal_records_appended,
            "wal_bytes_appended": self.wal_bytes_appended,
            "wal_records_replayed": self.wal_records_replayed,
            "wal_records_skipped": self.wal_records_skipped,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes_written": self.checkpoint_bytes_written,
        })
        counters.update(self._rw.counters())
        counters.update(self.events.counters())
        counters["store_mutations"] = self.mutation_epoch
        return counters

    def histograms(self) -> Dict[str, Histogram]:
        """Duration histograms of the whole storage side: buffer latch
        waits / miss stalls / write-backs (pager), store lock waits,
        and — when a WAL is attached — append/fsync durations."""
        maps = [self.pager.histograms(), self._rw.histograms()]
        if self.wal is not None:
            maps.append(self.wal.histograms())
        return merge_histogram_maps(*maps)

    def reset_counters(self) -> None:
        self.pager.reset_counters()


def _collect_ext_refs(obj: Any, acc: set) -> None:
    """Accumulate every ``("ext", hash)`` marker in a relative-code
    structure (instruction tuples, switch tables, nested constants)."""
    if isinstance(obj, tuple):
        if (len(obj) == 2 and obj[0] == "ext"
                and isinstance(obj[1], int)):
            acc.add(obj[1])
            return
        for item in obj:
            _collect_ext_refs(item, acc)
    elif isinstance(obj, list):
        for item in obj:
            _collect_ext_refs(item, acc)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            _collect_ext_refs(key, acc)
            _collect_ext_refs(value, acc)


def _infer_types(rows: Sequence[tuple], arity: int) -> List[str]:
    types = ["atom"] * arity
    if rows:
        first = rows[0]
        for i in range(arity):
            v = first[i]
            if isinstance(v, bool):
                raise TypeError_("atomic value", v)
            if isinstance(v, int):
                types[i] = "int"
            elif isinstance(v, float):
                types[i] = "real"
            elif isinstance(v, str):
                types[i] = "atom"
            else:
                raise TypeError_("atomic value", v)
    return types


def _fact_values(head: Term) -> tuple:
    if not isinstance(head, Struct):
        raise TypeError_("fact with arguments", head)
    values = []
    for arg in head.args:
        arg = deref(arg)
        if isinstance(arg, Atom):
            values.append(arg.name)
        elif isinstance(arg, (int, float)) and not isinstance(arg, bool):
            values.append(arg)
        else:
            raise TypeError_("atomic value", arg)
    return tuple(values)
