"""The EDB procedure store (paper §4).

Implements the four structures of §4:

1. **Procedures table** — every external procedure has an entry
   (mirrored in the ``$procedures`` BANG relation and an in-memory map);
2. **External dictionary** — see :mod:`repro.edb.external_dict`;
3. **Per-procedure relation** — one BANG relation per stored procedure,
   one tuple per clause: a ``term`` attribute per head argument (typed,
   indexable on type and value), plus ``clause_id`` and the boolean
   ``code`` attribute;
4. **Clauses relation** — ``(procedure_id, clause_id, relative_code)``;
   the code attribute holds compiled WAM code with external-dictionary
   references.

"Ordinary" relations (conventional DBMS data) are the special case where
``code`` is false and only atomic formats are allowed — stored here in
*facts mode*, giving the relational engine direct set-at-a-time access
while the inference engine sees them as procedures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..bang.catalog import AttributeSpec, Catalog, RelationSchema
from ..bang.pager import Pager
from ..bang.relation import BangRelation
from ..errors import CatalogError, ExistenceError, TypeError_
from ..terms import Atom, Struct, Term, Var, deref
from ..wam.compiler import ClauseCompiler, CompileContext, split_clause
from .codec import encode_code, measure_code
from .external_dict import ExternalDictionary


def summarize_arg(term: Term) -> tuple:
    """Head-argument summary stored in the per-procedure relation."""
    term = deref(term)
    if isinstance(term, Var):
        return ("var",)
    if isinstance(term, Atom):
        return ("atom", term.name)
    if isinstance(term, bool):
        raise TypeError_("term", term)
    if isinstance(term, int):
        return ("int", term)
    if isinstance(term, float):
        return ("real", term)
    assert isinstance(term, Struct)
    if term.indicator == (".", 2):
        return ("list",)
    return ("struct", term.name, term.arity)


@dataclass
class StoredClause:
    """One clause as fetched from the EDB."""

    clause_id: int
    relative_code: list
    summaries: Tuple[tuple, ...]
    has_body: bool
    source: str = ""  # source text, kept only in source mode (Educe)


@dataclass
class StoredProcedure:
    """Procedures-table entry."""

    name: str
    arity: int
    mode: str             # 'rules' | 'facts' | 'source'
    relation: BangRelation
    nclauses: int = 0
    version: int = 0      # bumped on update; invalidates loader caches

    @property
    def key(self) -> str:
        return f"{self.name}/{self.arity}"


class ExternalStore:
    """One External Data Base: catalog + dictionaries + procedure store."""

    def __init__(self, pager: Optional[Pager] = None,
                 bucket_capacity: int = 50):
        self.pager = pager or Pager()
        self.catalog = Catalog(self.pager, bucket_capacity)
        self.external_dict = ExternalDictionary(self.catalog)
        self._procs: Dict[Tuple[str, int], StoredProcedure] = {}
        self.procs_relation = self.catalog.create(RelationSchema(
            "$procedures",
            [
                AttributeSpec("name", "atom"),
                AttributeSpec("arity", "int"),
                AttributeSpec("mode", "atom"),
            ],
            key_dims=[0, 1],
        ))
        self.clauses_relation = self.catalog.create(RelationSchema(
            "$clauses",
            [
                AttributeSpec("procedure_id", "atom"),
                AttributeSpec("clause_id", "int"),
                AttributeSpec("payload", "term"),
            ],
            key_dims=[0, 1],
        ))
        self.code_bytes_stored = 0
        self.source_bytes_stored = 0

    # ------------------------------------------------------------- metadata

    def lookup(self, name: str, arity: int) -> Optional[StoredProcedure]:
        return self._procs.get((name, arity))

    def get(self, name: str, arity: int) -> StoredProcedure:
        proc = self.lookup(name, arity)
        if proc is None:
            raise ExistenceError("external procedure", f"{name}/{arity}")
        return proc

    def procedures(self) -> List[StoredProcedure]:
        return list(self._procs.values())

    def _register(self, proc: StoredProcedure) -> None:
        if (proc.name, proc.arity) in self._procs:
            raise CatalogError(f"{proc.key} already stored")
        self._procs[(proc.name, proc.arity)] = proc
        self.procs_relation.insert((proc.name, proc.arity, proc.mode))

    def _proc_relation_schema(self, name: str, arity: int) -> RelationSchema:
        attrs = [AttributeSpec(f"arg{i + 1}", "term") for i in range(arity)]
        attrs.append(AttributeSpec("clause_id", "int"))
        attrs.append(AttributeSpec("code", "int"))  # boolean flag
        key_dims = list(range(arity)) if arity else [arity]  # clause_id key
        return RelationSchema(f"$p${name}/{arity}", attrs, key_dims=key_dims)

    # ------------------------------------------------------- rules (compiled)

    def store_rules(self, name: str, arity: int, clauses: Sequence[Term],
                    context: CompileContext) -> StoredProcedure:
        """Compile *clauses* and store them as relative code (§3.1).

        Auxiliary procedures synthesised for control constructs are
        stored recursively, so the EDB is self-contained.
        """
        aux_sink: List[Tuple[str, int, list]] = []
        store_ctx = CompileContext(
            context.dictionary,
            define_procedure=lambda n, a, c: aux_sink.append((n, a, c)))
        compiler = ClauseCompiler(store_ctx)

        relation = self.catalog.create(self._proc_relation_schema(name, arity))
        proc = StoredProcedure(name, arity, "rules", relation)
        self._register(proc)

        for cid, clause in enumerate(clauses):
            compiled = compiler.compile_clause(clause)
            head, body = split_clause(clause)
            head_args = head.args if isinstance(head, Struct) else ()
            summaries = tuple(summarize_arg(a) for a in head_args)
            row = summaries + (cid, 1)
            relation.insert(row)
            relative = encode_code(compiled.code, context.dictionary,
                                   self.external_dict)
            self.code_bytes_stored += measure_code(relative)
            # The payload rides as a non-key attribute: it is pickled
            # with its page, so code size and transfer are page-accounted.
            self.clauses_relation.insert((proc.key, cid, StoredClause(
                clause_id=cid, relative_code=relative,
                summaries=summaries, has_body=bool(body))))
        proc.nclauses = len(clauses)

        for aux_name, aux_arity, aux_clauses in aux_sink:
            self.store_rules(aux_name, aux_arity, aux_clauses, context)
        return proc

    def fetch_clauses(self, name: str, arity: int,
                      assignment: Optional[Dict[int, tuple]] = None
                      ) -> List[StoredClause]:
        """Candidate clauses whose head-argument summaries are compatible
        with *assignment* (``{arg_index: summary}``) — the attribute-level
        half of pre-unification, answered by the BANG grid."""
        proc = self.get(name, arity)
        assignment = assignment or {}
        if proc.mode == "facts":
            raise CatalogError(f"{proc.key} is a facts relation")
        rows = proc.relation.query(dict(assignment))
        wanted = {row[arity] for row in rows}
        # One clustered partial-match fetch for the whole procedure: the
        # deterministic collect-at-once of §3.2.1.
        fetched = [
            row[2] for row in self.clauses_relation.query({0: proc.key})
            if row[1] in wanted
        ]
        fetched.sort(key=lambda sc: sc.clause_id)
        return fetched

    def clause_count_pages(self, name: str, arity: int) -> int:
        proc = self.get(name, arity)
        return self.clauses_relation.pages_for({0: proc.key})

    # ----------------------------------------------------------- facts mode

    def store_facts(self, name: str, arity: int,
                    rows: Sequence[tuple],
                    types: Optional[Sequence[str]] = None,
                    key_dims: Optional[Sequence[int]] = None
                    ) -> StoredProcedure:
        """Store an ordinary relation (code attribute false, atomic
        formats only).  ``key_dims`` selects the indexed attributes
        (default: all — full partial-match clustering)."""
        if types is None:
            types = _infer_types(rows, arity)
        attrs = [AttributeSpec(f"arg{i + 1}", t)
                 for i, t in enumerate(types)]
        schema = RelationSchema(f"$p${name}/{arity}", attrs,
                                key_dims=list(key_dims)
                                if key_dims is not None else None)
        relation = self.catalog.create(schema)
        proc = StoredProcedure(name, arity, "facts", relation)
        self._register(proc)
        proc.nclauses = relation.insert_many(rows)
        return proc

    def fetch_facts(self, name: str, arity: int,
                    assignment: Optional[Dict[int, Any]] = None
                    ) -> Iterator[tuple]:
        proc = self.get(name, arity)
        if proc.mode != "facts":
            raise CatalogError(f"{proc.key} is not a facts relation")
        if assignment:
            return proc.relation.query(dict(assignment))
        return proc.relation.scan()

    def relation_of(self, name: str, arity: int) -> BangRelation:
        """Direct relational-engine access to a facts relation — the
        goal-oriented evaluation path of §4."""
        return self.get(name, arity).relation

    # ---------------------------------------------------------- source mode

    def store_source(self, name: str, arity: int,
                     clauses: Sequence[Term]) -> StoredProcedure:
        """Store rules as *source text* — the Educe predecessor's scheme
        (§2.3), kept as the baseline the paper measures against."""
        from ..lang.writer import format_clause
        relation = self.catalog.create(self._proc_relation_schema(name, arity))
        proc = StoredProcedure(name, arity, "source", relation)
        self._register(proc)
        for cid, clause in enumerate(clauses):
            head, body = split_clause(clause)
            head_args = head.args if isinstance(head, Struct) else ()
            summaries = tuple(summarize_arg(a) for a in head_args)
            relation.insert(summaries + (cid, 0))
            text = format_clause(clause)
            self.source_bytes_stored += len(text)
            self.clauses_relation.insert((proc.key, cid, StoredClause(
                clause_id=cid, relative_code=[],
                summaries=summaries, has_body=bool(body), source=text)))
        proc.nclauses = len(clauses)
        return proc

    # -------------------------------------------------------------- updates

    def assert_clause(self, name: str, arity: int, clause: Term,
                      context: CompileContext) -> None:
        """Append a clause to a stored rules procedure."""
        proc = self.get(name, arity)
        if proc.mode == "facts":
            head, _ = split_clause(clause)
            values = _fact_values(head)
            proc.relation.insert(values)
            proc.nclauses += 1
            proc.version += 1
            return
        compiler = ClauseCompiler(context)
        compiled = compiler.compile_clause(clause)
        head, body = split_clause(clause)
        head_args = head.args if isinstance(head, Struct) else ()
        summaries = tuple(summarize_arg(a) for a in head_args)
        existing = [
            row[1] for row in self.clauses_relation.query({0: proc.key})
        ]
        cid = max(existing, default=-1) + 1
        proc.relation.insert(summaries + (cid, 1))
        relative = encode_code(compiled.code, context.dictionary,
                               self.external_dict)
        self.code_bytes_stored += measure_code(relative)
        self.clauses_relation.insert((proc.key, cid, StoredClause(
            clause_id=cid, relative_code=relative,
            summaries=summaries, has_body=bool(body))))
        proc.nclauses += 1
        proc.version += 1

    def retract_clause(self, name: str, arity: int, clause_id: int) -> None:
        proc = self.get(name, arity)
        proc.relation.delete_where({proc.arity: clause_id})
        self.clauses_relation.delete_where({0: proc.key, 1: clause_id})
        proc.nclauses -= 1
        proc.version += 1

    # ----------------------------------------------------------- persistence

    def save(self, path: str) -> None:
        """Persist the whole EDB to *path*.

        This is what relative addresses buy (§3.1): the stored clause
        code references the external dictionary only, so a *different*
        session — with a fresh internal dictionary whose identifiers
        bear no relation to this one's — can load the file and run the
        code after plain address resolution.
        """
        import pickle
        self.pager.flush()
        with open(path, "wb") as f:
            pickle.dump(self, f, protocol=4)

    @staticmethod
    def load(path: str) -> "ExternalStore":
        """Reopen a saved EDB."""
        import pickle
        with open(path, "rb") as f:
            store = pickle.load(f)
        if not isinstance(store, ExternalStore):
            raise CatalogError(f"{path} is not a saved EDB")
        return store

    # ------------------------------------------------------------- counters

    def io_counters(self) -> dict:
        return self.pager.io_counters()

    def reset_counters(self) -> None:
        self.pager.reset_counters()



def _infer_types(rows: Sequence[tuple], arity: int) -> List[str]:
    types = ["atom"] * arity
    if rows:
        first = rows[0]
        for i in range(arity):
            v = first[i]
            if isinstance(v, bool):
                raise TypeError_("atomic value", v)
            if isinstance(v, int):
                types[i] = "int"
            elif isinstance(v, float):
                types[i] = "real"
            elif isinstance(v, str):
                types[i] = "atom"
            else:
                raise TypeError_("atomic value", v)
    return types


def _fact_values(head: Term) -> tuple:
    if not isinstance(head, Struct):
        raise TypeError_("fact with arguments", head)
    values = []
    for arg in head.args:
        arg = deref(arg)
        if isinstance(arg, Atom):
            values.append(arg.name)
        elif isinstance(arg, (int, float)) and not isinstance(arg, bool):
            values.append(arg)
        else:
            raise TypeError_("atomic value", arg)
    return tuple(values)
