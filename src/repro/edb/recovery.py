"""Crash-recovery reporting for the durable EDB.

:meth:`repro.edb.store.ExternalStore.open` reconstructs the last
committed database state from the checkpoint + write-ahead log and
sweeps the pages file for corruption.  Everything it did — and
everything it *refused* to trust — is summarised in a
:class:`RecoveryReport`, attached to the store as ``store.recovery``
and surfaced by the REPL's ``:open``.

The report is deliberately loud about partial outcomes: a torn WAL
tail, stale-era records skipped after an interrupted checkpoint, and
quarantined pages are normal consequences of crashes, but the operator
should see them, not discover them later as a missing clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class RecoveryReport:
    """What :meth:`ExternalStore.open` found and did."""

    path: str
    #: a fresh EDB was created (nothing existed at *path*)
    created: bool = False
    #: bytes of checkpoint payload loaded
    checkpoint_bytes: int = 0
    #: committed WAL records found in the log
    wal_records_seen: int = 0
    #: records replayed onto the checkpoint (current era)
    wal_records_replayed: int = 0
    #: records skipped because they predate the loaded checkpoint
    #: (a crash landed between checkpoint rename and log reset)
    wal_records_stale: int = 0
    #: the log ended in a torn/corrupt frame that was truncated away
    wal_torn_tail: bool = False
    #: byte offset just past the last committed WAL frame (where a
    #: replica tailer bootstrapped from this checkpoint would resume)
    wal_good_end: int = 0
    #: replayed operations by kind (``{"assert_rule": 2, ...}``)
    ops_replayed: Dict[str, int] = field(default_factory=dict)
    #: pages validated during the recovery sweep
    pages_scanned: int = 0
    #: page ids quarantined (CRC/frame/payload corruption)
    pages_quarantined: List[int] = field(default_factory=list)
    #: non-fatal problems encountered (replay stopped at the first)
    errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when recovery found nothing abnormal: no torn tail, no
        corrupt pages, no replay errors.  Replayed records themselves
        are normal (they just mean the last session did not checkpoint
        before exiting)."""
        return (not self.wal_torn_tail and not self.pages_quarantined
                and not self.errors)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "created": self.created,
            "checkpoint_bytes": self.checkpoint_bytes,
            "wal_records_seen": self.wal_records_seen,
            "wal_records_replayed": self.wal_records_replayed,
            "wal_records_stale": self.wal_records_stale,
            "wal_torn_tail": self.wal_torn_tail,
            "wal_good_end": self.wal_good_end,
            "ops_replayed": dict(self.ops_replayed),
            "pages_scanned": self.pages_scanned,
            "pages_quarantined": list(self.pages_quarantined),
            "errors": list(self.errors),
            "clean": self.clean,
        }

    def format(self) -> str:
        """Multi-line human-readable summary (REPL ``:open``)."""
        lines = [f"recovery: {self.path}"]
        if self.created:
            lines.append("  created a fresh EDB (no checkpoint found)")
            return "\n".join(lines)
        lines.append(f"  checkpoint: {self.checkpoint_bytes} bytes, "
                     f"{self.pages_scanned} pages verified")
        if self.wal_records_seen or self.wal_torn_tail:
            bits = [f"{self.wal_records_replayed} replayed"]
            if self.wal_records_stale:
                bits.append(f"{self.wal_records_stale} stale (skipped)")
            if self.wal_torn_tail:
                bits.append("torn tail truncated")
            lines.append(f"  wal: {self.wal_records_seen} records — "
                         + ", ".join(bits))
            if self.ops_replayed:
                ops = "  ".join(f"{k}={v}"
                                for k, v in sorted(self.ops_replayed.items()))
                lines.append(f"    by op: {ops}")
        else:
            lines.append("  wal: empty")
        if self.pages_quarantined:
            shown = ", ".join(str(p) for p in self.pages_quarantined[:16])
            more = len(self.pages_quarantined) - 16
            lines.append(
                f"  QUARANTINED {len(self.pages_quarantined)} corrupt "
                f"page(s): {shown}" + (f" (+{more} more)" if more > 0 else ""))
        for err in self.errors:
            lines.append(f"  ERROR: {err}")
        lines.append("  state: " + ("clean" if self.clean else
                                    "recovered with findings above"))
        return "\n".join(lines)
