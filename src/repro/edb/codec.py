"""Relative-address code serialisation (paper §3.1).

"Because of persistence of code in the EDB and the need to garbage
collect within a given session, only relative addresses can be generated
for the code in the EDB."

Compiled clause code references atoms and functors through internal
dictionary identifiers — positions in the session's segmented hash table
— which are meaningless in another session.  Before storage, every
internal identifier is replaced by the functor's **external identifier**
(its stable hash, :mod:`repro.edb.external_dict`); at load time the
dynamic loader maps them back, interning the functor in the internal
dictionary if this session has not seen it yet.

The encoded form is a list of instruction tuples in which dictionary
references appear as ``("ext", hash)`` markers.  ``measure_code``
reports the byte size the clauses relation will be charged for.
"""

from __future__ import annotations

import pickle
from typing import Callable, List

from ..dictionary import SegmentedDictionary
from ..errors import CodecError
from ..wam import instructions as I
from .external_dict import ExternalDictionary

# Instruction shapes, from the perspective of dictionary references:
_CONST_OPS = {I.GET_CONSTANT, I.PUT_CONSTANT, I.UNIFY_CONSTANT}
_FUNCTOR_OPS = {I.GET_STRUCTURE, I.PUT_STRUCTURE}
_PROC_OPS = {I.CALL, I.EXECUTE}


def encode_code(code: List[tuple], internal: SegmentedDictionary,
                external: ExternalDictionary) -> List[tuple]:
    """Internal-identifier code → relative (external-identifier) code."""

    def exported(ident: int) -> tuple:
        name, arity = internal.functor(ident)
        return ("ext", external.intern(name, arity))

    return _transcode(code, exported)


def decode_code(code: List[tuple], internal: SegmentedDictionary,
                external: ExternalDictionary) -> List[tuple]:
    """Relative code → internal-identifier code (the loader's address
    resolution step); interns unseen functors."""

    def imported(ref) -> int:
        if not (isinstance(ref, tuple) and len(ref) == 2 and ref[0] == "ext"):
            raise CodecError(f"expected external reference, got {ref!r}")
        name, arity = external.resolve(ref[1])
        return internal.intern(name, arity)

    return _transcode(code, imported)


def _transcode(code: List[tuple], map_ref: Callable) -> List[tuple]:
    out: List[tuple] = []
    for instr in code:
        op = instr[0]
        if op in _CONST_OPS:
            const = instr[1]
            if const[0] == "atom":
                const = ("atom", map_ref(const[1]))
            out.append((op, const) + instr[2:])
        elif op in _FUNCTOR_OPS:
            out.append((op, map_ref(instr[1])) + instr[2:])
        elif op in _PROC_OPS:
            out.append((op, map_ref(instr[1]), instr[2]))
        elif op == I.SWITCH_ON_CONSTANT:
            table = {}
            for key, target in instr[1].items():
                if key[0] == "atom":
                    key = ("atom", map_ref(key[1]))
                table[key] = target
            out.append((op, table, instr[2]))
        elif op == I.SWITCH_ON_STRUCTURE:
            table = {("fun", map_ref(key[1])): target
                     for key, target in instr[1].items()}
            out.append((op, table, instr[2]))
        else:
            out.append(instr)
    return out


def measure_code(code: List[tuple]) -> int:
    """Byte size of the serialised code (what the page store is charged).

    This is also the honest answer to "source representation is wasteful
    of space" (§2.3): benchmarks compare it against the source text size.
    """
    return len(pickle.dumps(code, protocol=4))
