"""The External Data Base: compiled code in secondary storage (§3.1, §4).

This package implements the paper's central mechanism — rules kept in
the EDB as **compiled WAM code with associative (relative) addresses**
instead of source text:

* :mod:`repro.edb.external_dict` — the external dictionary (name, arity,
  hash) that relative code references instead of internal identifiers;
* :mod:`repro.edb.codec` — serialisation of clause code with external
  references;
* :mod:`repro.edb.store` — the procedures table, the per-procedure BANG
  relation (one ``term`` attribute per head argument + ``clause_id`` +
  ``code``) and the clauses relation
  ``(procedure_id, clause_id, relative_code)``;
* :mod:`repro.edb.preunify` — the pre-unification unit executed "inside
  Bang": head-argument filtering before a clause is loaded;
* :mod:`repro.edb.loader` — the dynamic loader: resolves associative
  addresses against the internal dictionary and splices control and
  indexing code around the retrieved clause code.
"""

from .codec import decode_code, encode_code
from .external_dict import ExternalDictionary
from .loader import DynamicLoader
from .preunify import PreUnifier
from .store import ExternalStore, StoredProcedure

__all__ = [
    "ExternalDictionary",
    "encode_code",
    "decode_code",
    "ExternalStore",
    "StoredProcedure",
    "PreUnifier",
    "DynamicLoader",
]
