"""The external dictionary (paper §4, structure 2).

"A table managed by Bang to keep information about atoms and functors in
external storage.  An entry here has the string of characters making the
name of an atom or functor, its arity and a computed hash value.  The
hash value is computed by applying the hash function of the internal
dictionary, without clash resolution."

The external identifier of a functor is therefore its raw 64-bit FNV-1a
hash — stable across sessions, independent of the internal dictionary's
slot allocation.  Compiled code stored in the EDB references functors by
these identifiers; the dynamic loader resolves them back to internal
identifiers at load time.

Entries live in a BANG relation keyed by ``(hash_band, name)`` so both
hash probes (loader resolution) and name-range queries (the paper notes
"the strings of characters are used in range queries") are clustered.
A write-through cache keeps resolution cheap within a session.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..bang.catalog import AttributeSpec, Catalog, RelationSchema
from ..dictionary import fnv1a
from ..errors import ExistenceError


class ExternalDictionary:
    """Functor names/arities ↔ stable external hash identifiers."""

    RELATION_NAME = "$ext_dict"

    def __init__(self, catalog: Catalog):
        existing = catalog.lookup(self.RELATION_NAME)
        if existing is not None:
            self.relation = existing
        else:
            schema = RelationSchema(
                self.RELATION_NAME,
                [
                    AttributeSpec("hash", "int"),
                    AttributeSpec("name", "atom"),
                    AttributeSpec("arity", "int"),
                ],
                key_dims=[0, 1],
            )
            self.relation = catalog.create(schema)
        self._by_hash: Dict[int, Tuple[str, int]] = {}
        self._by_functor: Dict[Tuple[str, int], int] = {}
        self.misses = 0  # cache misses that went to storage

    # ------------------------------------------------------------------ API

    def intern(self, name: str, arity: int = 0) -> int:
        """External identifier for (name, arity), storing it if new."""
        key = (name, arity)
        cached = self._by_functor.get(key)
        if cached is not None:
            return cached
        ext_id = fnv1a(name, arity)
        if not self._probe(ext_id):
            self.relation.insert((ext_id, name, arity))
            self._admit(ext_id, name, arity)
        return ext_id

    def resolve(self, ext_id: int) -> Tuple[str, int]:
        """(name, arity) for an external identifier."""
        cached = self._by_hash.get(ext_id)
        if cached is not None:
            return cached
        if self._probe(ext_id):
            return self._by_hash[ext_id]
        raise ExistenceError("external functor", hex(ext_id))

    def lookup(self, name: str, arity: int = 0) -> Optional[int]:
        key = (name, arity)
        cached = self._by_functor.get(key)
        if cached is not None:
            return cached
        ext_id = fnv1a(name, arity)
        if self._probe(ext_id):
            return ext_id
        return None

    def name_range(self, low: str, high: str):
        """All entries whose name lies in [low, high] — the range-query
        facility the paper calls out."""
        yield from self.relation.range_query(1, low, high)

    def __len__(self) -> int:
        return len(self.relation)

    # ------------------------------------------------------------ internals

    def _probe(self, ext_id: int) -> bool:
        """Check storage for *ext_id*, admitting hits to the cache."""
        if ext_id in self._by_hash:
            return True
        self.misses += 1
        found = False
        for row in self.relation.query({0: ext_id}):
            self._admit(row[0], row[1], row[2])
            found = True
        return found

    def _admit(self, ext_id: int, name: str, arity: int) -> None:
        self._by_hash[ext_id] = (name, arity)
        self._by_functor[(name, arity)] = ext_id
