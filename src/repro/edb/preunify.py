"""Pre-unification on external storage (paper §4).

"Bang can directly execute compiled code kept in the clauses relation.
However ... successful execution is a necessary but not sufficient
requirement" — the storage engine executes a clause's *head-argument
code* against the query's bound arguments to decide whether the clause
is worth loading at all.  Clauses that cannot match never reach the
emulator, so no choice point is ever created for them (§3.2.1).

Two layers:

* **attribute filtering** — :meth:`summaries_from_registers` turns the
  caller's argument registers into the typed summaries the per-procedure
  BANG relation is keyed on; the grid answers the partial match;
* **code execution** — :meth:`filter_by_execution` runs the retrieved
  clause's ``get``/``unify`` prefix in a scratch interpreter against the
  live argument registers, at a configurable *depth*:

  - ``"none"``   — trust the attribute filter only;
  - ``"shallow"``— execute top-level ``get`` instructions, skipping the
    argument code of nested structures ("it is possible to select a
    clause by executing only the code corresponding to the highest
    levels of nesting");
  - ``"full"``   — execute the whole head prefix (exact filter).

  The paper explicitly leaves the best depth "a matter for empirical
  experimentation" — benchmark E9 runs that experiment.
"""

from __future__ import annotations

from typing import Dict, List

from ..obs.tracing import NULL_TRACER
from ..wam import instructions as I
from .store import StoredClause

_HEAD_GET_OPS = {
    I.GET_VARIABLE, I.GET_VALUE, I.GET_CONSTANT, I.GET_NIL,
    I.GET_STRUCTURE, I.GET_LIST,
}
_HEAD_UNIFY_OPS = {
    I.UNIFY_VARIABLE, I.UNIFY_VALUE, I.UNIFY_LOCAL_VALUE,
    I.UNIFY_CONSTANT, I.UNIFY_NIL, I.UNIFY_VOID,
}
_HEAD_SKIP_OPS = {I.ALLOCATE, I.GET_LEVEL}

DEPTHS = ("none", "shallow", "full")


class PreUnifier:
    """Executes head code against query arguments, with undo."""

    def __init__(self, depth: str = "full"):
        if depth not in DEPTHS:
            raise ValueError(f"depth must be one of {DEPTHS}")
        self.depth = depth
        self.executions = 0
        self.rejections = 0
        self.tracer = NULL_TRACER  # session installs its shared tracer

    # ------------------------------------------------------ summary builder

    @staticmethod
    def summaries_from_registers(machine, arity: int) -> Dict[int, tuple]:
        """Typed summaries of the *bound* argument registers — the grid
        assignment for the per-procedure relation."""
        out: Dict[int, tuple] = {}
        for i in range(arity):
            cell = machine.deref_cell(machine.x[i])
            tag = cell[0]
            if tag == "REF":
                continue
            if tag == "CON":
                out[i] = ("atom", machine.dictionary.name(cell[1]))
            elif tag == "INT":
                out[i] = ("int", cell[1])
            elif tag == "FLT":
                out[i] = ("real", cell[1])
            elif tag == "LIS":
                out[i] = ("list",)
            else:  # STR
                fid = machine.heap[cell[1]][1]
                name, fa = machine.dictionary.functor(fid)
                out[i] = ("struct", name, fa)
        return out

    # ------------------------------------------------------- code execution

    def filter_by_execution(self, machine, clauses: List[StoredClause],
                            decoded: List[list]) -> List[int]:
        """Indices of clauses whose head prefix executes successfully
        against the current argument registers (depth-dependent)."""
        if self.depth == "none":
            return list(range(len(clauses)))
        with self.tracer.span("preunify.filter", depth=self.depth,
                              candidates=len(clauses)) as span:
            survivors = []
            for idx, code in enumerate(decoded):
                self.executions += 1
                if self._head_matches(machine, code):
                    survivors.append(idx)
                else:
                    self.rejections += 1
            if span is not None:
                span.attrs["survivors"] = len(survivors)
        return survivors

    def _head_matches(self, machine, code: List[tuple]) -> bool:
        """Run the head prefix of *code* in a scratch register file;
        every side effect (bindings, heap growth) is undone."""
        # A barrier choice point forces conditional trailing to record
        # every binding below the current heap top, so the undo in the
        # finally block is complete (bindings above the mark vanish with
        # the heap truncation).
        barrier = machine._push_barrier()
        trail_mark = len(machine.trail)
        heap_mark = len(machine.heap)
        heap = machine.heap
        regs: Dict[tuple, object] = {}
        for i in range(len(machine.x)):
            if machine.x[i] is not None:
                regs[("x", i)] = machine.x[i]

        shallow = self.depth == "shallow"
        ok = True
        mode = "read"
        s = 0
        skip_unify = False
        try:
            for instr in code:
                op = instr[0]
                if op in _HEAD_SKIP_OPS:
                    continue
                if op not in _HEAD_GET_OPS and op not in _HEAD_UNIFY_OPS:
                    break  # end of head prefix
                if op in _HEAD_UNIFY_OPS:
                    if skip_unify:
                        if op == I.UNIFY_VARIABLE:
                            # The skipped instruction would have defined
                            # this register; leaving a stale caller value
                            # in place would make later get_* tests
                            # spuriously fail (unsound).  Fresh var =
                            # sound over-approximation.
                            regs[instr[1]] = machine.new_var()
                        continue
                    if op == I.UNIFY_VARIABLE:
                        if mode == "read":
                            regs[instr[1]] = heap[s]
                            s += 1
                        else:
                            regs[instr[1]] = machine.new_var()
                        continue
                    if op == I.UNIFY_VALUE or op == I.UNIFY_LOCAL_VALUE:
                        if mode == "read":
                            if not machine.unify(
                                    regs.get(instr[1], machine.new_var()),
                                    heap[s]):
                                ok = False
                                break
                            s += 1
                        else:
                            heap.append(machine.deref_cell(
                                regs.get(instr[1], machine.new_var())))
                        continue
                    if op == I.UNIFY_CONSTANT:
                        want = _const_cell(machine, instr[1])
                        if mode == "read":
                            cell = machine.deref_cell(heap[s])
                            s += 1
                            if cell[0] == "REF":
                                machine.bind(cell[1], want)
                            elif cell[0] != want[0] or cell[1] != want[1]:
                                ok = False
                                break
                        else:
                            heap.append(want)
                        continue
                    if op == I.UNIFY_NIL:
                        want = ("CON", machine._nil_id)
                        if mode == "read":
                            cell = machine.deref_cell(heap[s])
                            s += 1
                            if cell[0] == "REF":
                                machine.bind(cell[1], want)
                            elif cell != want:
                                ok = False
                                break
                        else:
                            heap.append(want)
                        continue
                    if op == I.UNIFY_VOID:
                        if mode == "read":
                            s += instr[1]
                        else:
                            for _ in range(instr[1]):
                                machine.new_var()
                        continue
                # --- get instructions -----------------------------------
                skip_unify = False
                if op == I.GET_VARIABLE:
                    regs[instr[1]] = regs.get(
                        ("x", instr[2][1]), machine.new_var())
                    continue
                if op == I.GET_VALUE:
                    a = regs.get(instr[1], machine.new_var())
                    b = regs.get(("x", instr[2][1]), machine.new_var())
                    if not machine.unify(a, b):
                        ok = False
                        break
                    continue
                if op == I.GET_CONSTANT:
                    cell = machine.deref_cell(
                        regs.get(("x", instr[2][1]), machine.new_var()))
                    want = _const_cell(machine, instr[1])
                    if cell[0] == "REF":
                        machine.bind(cell[1], want)
                    elif cell[0] != want[0] or cell[1] != want[1]:
                        ok = False
                        break
                    continue
                if op == I.GET_NIL:
                    cell = machine.deref_cell(
                        regs.get(("x", instr[1][1]), machine.new_var()))
                    if cell[0] == "REF":
                        machine.bind(cell[1], ("CON", machine._nil_id))
                    elif cell != ("CON", machine._nil_id):
                        ok = False
                        break
                    continue
                if op == I.GET_STRUCTURE:
                    cell = machine.deref_cell(
                        regs.get(("x", instr[2][1]), machine.new_var()))
                    if cell[0] == "REF":
                        h = len(heap)
                        heap.append(("FUN", instr[1]))
                        machine.bind(cell[1], ("STR", h))
                        mode = "write"
                    elif cell[0] == "STR" and heap[cell[1]][1] == instr[1]:
                        s = cell[1] + 1
                        mode = "read"
                    else:
                        ok = False
                        break
                    skip_unify = shallow
                    if skip_unify and mode == "write":
                        # Complete the skipped structure with fresh vars
                        # so later unifications see a well-formed term.
                        for _ in range(machine.dictionary.arity(instr[1])):
                            machine.new_var()
                    continue
                if op == I.GET_LIST:
                    cell = machine.deref_cell(
                        regs.get(("x", instr[1][1]), machine.new_var()))
                    if cell[0] == "REF":
                        machine.bind(cell[1], ("LIS", len(heap)))
                        mode = "write"
                    elif cell[0] == "LIS":
                        s = cell[1]
                        mode = "read"
                    else:
                        ok = False
                        break
                    skip_unify = shallow
                    if skip_unify and mode == "write":
                        machine.new_var()
                        machine.new_var()
                    continue
        finally:
            machine._unwind_trail(trail_mark)
            del machine.heap[heap_mark:]
            machine.b = barrier.prev
        return ok


def _const_cell(machine, const) -> tuple:
    kind = const[0]
    if kind == "atom":
        return ("CON", const[1])
    if kind == "int":
        return ("INT", const[1])
    return ("FLT", const[1])
