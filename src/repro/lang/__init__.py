"""Prolog surface language: tokenizer, reader (parser) and writer.

The reader implements a full operator-precedence parser over the standard
operator table, which is the front end of the incremental compiler of the
paper's §3.1.  Programs and queries enter the system through
:func:`read_term` / :func:`read_program`.
"""

from .operators import OperatorTable, Op, default_operators
from .tokenizer import Token, tokenize
from .reader import Reader, read_term, read_terms, read_program
from .writer import term_to_text, format_clause

__all__ = [
    "OperatorTable",
    "Op",
    "default_operators",
    "Token",
    "tokenize",
    "Reader",
    "read_term",
    "read_terms",
    "read_program",
    "term_to_text",
    "format_clause",
]
