"""Term writer: render terms back to Prolog text.

Two modes:

* **canonical** — ignores operators, quotes where needed; the output can
  always be re-read (used by the Educe baseline, which stores rules in the
  EDB *in source form*, §2 of the paper).
* **operator** — pretty form using the operator table (``writeq`` style).
"""

from __future__ import annotations

from typing import Optional

from ..terms import NIL, Atom, Struct, Term, Var, deref
from .operators import OperatorTable, default_operators
from .tokenizer import _SYMBOL_CHARS  # shared symbolic-char set

_ATOM_NOQUOTE = {"[]", "{}", "!", ";", ",", "|"}


def _atom_needs_quotes(name: str) -> bool:
    if name in _ATOM_NOQUOTE:
        return False
    if not name:
        return True
    first = name[0]
    if first.islower() and all(c == "_" or c.isalnum() for c in name):
        return False
    if all(c in _SYMBOL_CHARS for c in name):
        return False
    return True


def _quote_atom(name: str) -> str:
    if not _atom_needs_quotes(name):
        return name
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f"'{escaped}'"


def term_to_text(
    term: Term,
    operators: Optional[OperatorTable] = None,
    quoted: bool = True,
    max_priority: int = 1200,
) -> str:
    """Render *term* using operator notation (``writeq``-like)."""
    ops = operators or default_operators()
    return _write(term, ops, quoted, max_priority, {})


def format_clause(term: Term, operators: Optional[OperatorTable] = None) -> str:
    """Render a clause with its terminating ``.`` — the exact source form
    the Educe baseline stores in the EDB."""
    return term_to_text(term, operators) + "."


def _var_name(var: Var, names: dict) -> str:
    name = names.get(id(var))
    if name is None:
        name = f"_G{len(names) + 1}"
        names[id(var)] = name
    return name


def _write(
    term: Term,
    ops: OperatorTable,
    quoted: bool,
    max_prio: int,
    names: dict,
) -> str:
    term = deref(term)

    if isinstance(term, Var):
        return _var_name(term, names)

    if isinstance(term, bool):  # guard: bools are not terms
        return "true" if term else "fail"

    if isinstance(term, int):
        return str(term)

    if isinstance(term, float):
        text = repr(term)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"

    if isinstance(term, Atom):
        return _quote_atom(term.name) if quoted else term.name

    assert isinstance(term, Struct)

    # Lists.
    if term.name == "." and term.arity == 2:
        return _write_list(term, ops, quoted, names)

    # Curly term.
    if term.name == "{}" and term.arity == 1:
        inner = _write(term.args[0], ops, quoted, 1200, names)
        return "{" + inner + "}"

    # Operator notation.
    if term.arity == 2:
        op = ops.infix(term.name)
        if op is not None:
            left = _write(term.args[0], ops, quoted, op.left_max, names)
            right = _write(term.args[1], ops, quoted, op.right_max, names)
            name = term.name
            if name == ",":
                text = f"{left}{name}{right}"
            elif all(c in _SYMBOL_CHARS for c in name):
                # Keep symbol runs from merging on re-read: "3- -4", not
                # "3--4" (which would tokenize as the atom '--').
                lsep = " " if (left and left[-1] in _SYMBOL_CHARS) else ""
                rsep = " " if (right and right[0] in _SYMBOL_CHARS) else ""
                text = f"{left}{lsep}{name}{rsep}{right}"
            else:
                text = f"{left} {name} {right}"
            if op.priority > max_prio:
                return f"({text})"
            return text
    if term.arity == 1:
        op = ops.prefix(term.name)
        if op is not None:
            arg = _write(term.args[0], ops, quoted, op.right_max, names)
            sep = "" if all(c in _SYMBOL_CHARS for c in term.name) else " "
            # avoid gluing '-' onto a number or another symbol char
            if sep == "" and arg and (arg[0].isdigit() or arg[0] in _SYMBOL_CHARS):
                sep = " "
            text = f"{term.name}{sep}{arg}"
            if op.priority > max_prio:
                return f"({text})"
            return text
        op = ops.postfix(term.name)
        if op is not None:
            arg = _write(term.args[0], ops, quoted, op.left_max, names)
            text = f"{arg}{term.name}"
            if op.priority > max_prio:
                return f"({text})"
            return text

    # Plain functor application.
    head = _quote_atom(term.name) if quoted else term.name
    args = ",".join(_write(a, ops, quoted, 999, names) for a in term.args)
    return f"{head}({args})"


def _write_list(term: Struct, ops, quoted: bool, names: dict) -> str:
    parts = []
    cursor: Term = term
    while True:
        cursor = deref(cursor)
        if isinstance(cursor, Struct) and cursor.name == "." and cursor.arity == 2:
            parts.append(_write(cursor.args[0], ops, quoted, 999, names))
            cursor = cursor.args[1]
        elif cursor is NIL:
            return "[" + ",".join(parts) + "]"
        else:
            tail = _write(cursor, ops, quoted, 999, names)
            return "[" + ",".join(parts) + "|" + tail + "]"
