"""Operator-precedence Prolog reader.

Turns token streams into :mod:`repro.terms` trees.  One :class:`Reader`
instance carries the operator table, so ``:- op/3`` directives seen by
:func:`read_program` affect subsequent clauses, as in a real incremental
compiler front end (paper §3.1).

Variables are scoped per clause: every occurrence of the same name within
one clause maps to the same :class:`~repro.terms.Var`; ``_`` is always
fresh.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import SyntaxError_
from ..terms import NIL, Atom, Struct, Term, Var, make_list
from .operators import MAX_PRIORITY, OperatorTable, default_operators
from .tokenizer import Token, tokenize

_ARG_PRIORITY = 999  # max priority inside argument lists / list elements


class _TokenStream:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        i = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[i]

    def next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "end":
            self._pos += 1
        return tok

    def error(self, message: str, tok: Optional[Token] = None) -> SyntaxError_:
        tok = tok or self.peek()
        return SyntaxError_(message, tok.line, tok.column)


class Reader:
    """A reusable Prolog reader with its own operator table."""

    def __init__(self, operators: Optional[OperatorTable] = None):
        self.operators = operators or default_operators()

    # ------------------------------------------------------------------ API

    def read_term(self, text: str) -> Term:
        """Parse exactly one term (with or without a trailing ``.``)."""
        term, varmap = self.read_term_with_vars(text)
        return term

    def read_term_with_vars(self, text: str) -> Tuple[Term, Dict[str, Var]]:
        """Parse one term; also return the name -> Var mapping."""
        stream = _TokenStream(tokenize(text))
        varmap: Dict[str, Var] = {}
        term = self._parse(stream, MAX_PRIORITY, varmap)[0]
        tok = stream.next()
        if tok.kind == "punct" and tok.value == "end_of_clause":
            tok = stream.next()
        if tok.kind != "end":
            raise stream.error(f"unexpected trailing token {tok.value!r}", tok)
        return term, varmap

    def read_terms(self, text: str) -> Iterator[Term]:
        """Parse a sequence of ``.``-terminated terms (a program text)."""
        stream = _TokenStream(tokenize(text))
        while stream.peek().kind != "end":
            varmap: Dict[str, Var] = {}
            term = self._parse(stream, MAX_PRIORITY, varmap)[0]
            tok = stream.next()
            if not (tok.kind == "punct" and tok.value == "end_of_clause"):
                raise stream.error("expected '.' at end of clause", tok)
            yield term

    # ----------------------------------------------------------- the parser

    def _parse(
        self, ts: _TokenStream, max_prio: int, varmap: Dict[str, Var]
    ) -> Tuple[Term, int]:
        left, left_prio = self._parse_primary(ts, max_prio, varmap)
        return self._parse_infix(ts, left, left_prio, max_prio, varmap)

    def _parse_infix(
        self,
        ts: _TokenStream,
        left: Term,
        left_prio: int,
        max_prio: int,
        varmap: Dict[str, Var],
    ) -> Tuple[Term, int]:
        while True:
            tok = ts.peek()
            if tok.kind != "atom":
                return left, left_prio
            name = str(tok.value)
            infix = self.operators.infix(name)
            postfix = self.operators.postfix(name)
            if infix and infix.priority <= max_prio and left_prio <= infix.left_max:
                # Don't consume ',' / '|' when the caller treats them as
                # separators (they arrive here only at priority >= 1000).
                if name in (",", "|") and max_prio < 1000:
                    return left, left_prio
                ts.next()
                right, _ = self._parse(ts, infix.right_max, varmap)
                if name == "|":
                    name = ";"  # '|' as infix is an alias for disjunction
                left = Struct(name, (left, right))
                left_prio = infix.priority
                continue
            if (
                postfix
                and postfix.priority <= max_prio
                and left_prio <= postfix.left_max
            ):
                ts.next()
                left = Struct(name, (left,))
                left_prio = postfix.priority
                continue
            return left, left_prio

    def _parse_primary(
        self, ts: _TokenStream, max_prio: int, varmap: Dict[str, Var]
    ) -> Tuple[Term, int]:
        tok = ts.next()

        if tok.kind == "int" or tok.kind == "float":
            return tok.value, 0

        if tok.kind == "string":
            # Double-quoted text maps to a list of character codes (ISO
            # default), which is what the workloads expect.
            return make_list([ord(c) for c in str(tok.value)]), 0

        if tok.kind == "var":
            name = str(tok.value)
            if name == "_":
                return Var("_"), 0
            var = varmap.get(name)
            if var is None:
                var = Var(name)
                varmap[name] = var
            return var, 0

        if tok.kind == "punct":
            if tok.value == "(":
                term, _ = self._parse(ts, MAX_PRIORITY, varmap)
                self._expect_punct(ts, ")")
                return term, 0
            if tok.value == "[":
                return self._parse_list(ts, varmap), 0
            if tok.value == "{":
                if ts.peek().is_punct("}"):
                    ts.next()
                    return Atom("{}"), 0
                inner, _ = self._parse(ts, MAX_PRIORITY, varmap)
                self._expect_punct(ts, "}")
                return Struct("{}", (inner,)), 0
            raise ts.error(f"unexpected {tok.value!r}", tok)

        if tok.kind == "atom":
            return self._parse_atom_primary(ts, tok, max_prio, varmap)

        raise ts.error("unexpected end of input", tok)

    def _parse_atom_primary(
        self,
        ts: _TokenStream,
        tok: Token,
        max_prio: int,
        varmap: Dict[str, Var],
    ) -> Tuple[Term, int]:
        name = str(tok.value)

        # Functor application: name immediately followed by '('.
        if tok.functor:
            ts.next()  # consume '('
            args = [self._parse(ts, _ARG_PRIORITY, varmap)[0]]
            while ts.peek().kind == "atom" and ts.peek().value == ",":
                ts.next()
                args.append(self._parse(ts, _ARG_PRIORITY, varmap)[0])
            self._expect_punct(ts, ")")
            return Struct(name, tuple(args)), 0

        # Negative number literals: '-' immediately before a number.
        nxt = ts.peek()
        if (
            name == "-"
            and nxt.kind in ("int", "float")
            and not nxt.layout_before
        ):
            ts.next()
            return -nxt.value, 0  # type: ignore[operator]

        prefix = self.operators.prefix(name)
        if prefix and prefix.priority <= max_prio and self._starts_term(nxt):
            operand, _ = self._parse(ts, prefix.right_max, varmap)
            return Struct(name, (operand,)), prefix.priority

        # Bare atom.  If it is an operator, it carries the operator's
        # priority as a term (lenient: capped at max allowed).
        atom_prio = 0
        if self.operators.is_operator(name):
            defs = [d for d in self.operators.lookup(name) if d is not None]
            atom_prio = min(max_prio, max(d.priority for d in defs))
        return Atom(name), atom_prio

    def _starts_term(self, tok: Token) -> bool:
        """Can *tok* begin a term? Used to disambiguate prefix operators."""
        if tok.kind in ("int", "float", "string", "var"):
            return True
        if tok.kind == "punct":
            return tok.value in ("(", "[", "{")
        if tok.kind == "atom":
            name = str(tok.value)
            if name in (",", "|"):
                return False
            # An atom that is *only* an infix/postfix operator cannot start
            # a term, unless it is followed by '(' (functor application).
            if tok.functor:
                return True
            infix_only = (
                self.operators.infix(name) or self.operators.postfix(name)
            ) and not self.operators.prefix(name)
            if infix_only:
                nxt_ok = False  # e.g. "a = =" is a syntax error anyway
                return nxt_ok
            return True
        return False

    def _parse_list(self, ts: _TokenStream, varmap: Dict[str, Var]) -> Term:
        if ts.peek().is_punct("]"):
            ts.next()
            return NIL
        items = [self._parse(ts, _ARG_PRIORITY, varmap)[0]]
        while ts.peek().kind == "atom" and ts.peek().value == ",":
            ts.next()
            items.append(self._parse(ts, _ARG_PRIORITY, varmap)[0])
        tail: Term = NIL
        if ts.peek().kind == "atom" and ts.peek().value == "|":
            ts.next()
            tail = self._parse(ts, _ARG_PRIORITY, varmap)[0]
        self._expect_punct(ts, "]")
        return make_list(items, tail)

    def _expect_punct(self, ts: _TokenStream, value: str) -> None:
        tok = ts.next()
        if not (tok.kind == "punct" and tok.value == value):
            raise ts.error(f"expected {value!r}, found {tok.value!r}", tok)


_shared_reader = Reader()


def read_term(text: str) -> Term:
    """Parse one term using the default operator table."""
    return _shared_reader.read_term(text)


def read_terms(text: str) -> List[Term]:
    """Parse a whole program text into a list of clause terms."""
    return list(_shared_reader.read_terms(text))


def read_program(text: str) -> List[Term]:
    """Alias of :func:`read_terms`, reading ``.``-terminated clauses."""
    return read_terms(text)
