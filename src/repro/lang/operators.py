"""Prolog operator table.

Standard-Prolog operator definitions with the classic types:

=======  ==========================================
xfx      infix, neither side may have equal priority
xfy      infix, right-associative
yfx      infix, left-associative
fy       prefix, operand may have equal priority
fx       prefix, operand must have lower priority
xf / yf  postfix
=======  ==========================================

The table is a mutable object so programs can declare operators with
``:- op(P, Type, Name)`` directives, as Educe* supports for its extended
syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import TypeError_

PREFIX_TYPES = ("fy", "fx")
INFIX_TYPES = ("xfx", "xfy", "yfx")
POSTFIX_TYPES = ("xf", "yf")
ALL_TYPES = PREFIX_TYPES + INFIX_TYPES + POSTFIX_TYPES

MAX_PRIORITY = 1200


@dataclass(frozen=True)
class Op:
    """A single operator definition."""

    priority: int
    type: str
    name: str

    @property
    def left_max(self) -> int:
        """Maximum priority allowed for the left operand (infix/postfix)."""
        if self.type in ("yfx", "yf"):
            return self.priority
        return self.priority - 1

    @property
    def right_max(self) -> int:
        """Maximum priority allowed for the right operand (infix/prefix)."""
        if self.type in ("xfy", "fy"):
            return self.priority
        return self.priority - 1


# The standard table, extended with a few Educe*-style declarations that the
# workloads use (none conflict with ISO).
_DEFAULT_OPS = [
    (1200, "xfx", ":-"),
    (1200, "xfx", "-->"),
    (1200, "fx", ":-"),
    (1200, "fx", "?-"),
    (1150, "fx", "dynamic"),
    (1150, "fx", "discontiguous"),
    (1150, "fx", "multifile"),
    (1150, "fx", "pred"),
    (1150, "fx", "meta_predicate"),
    (1100, "xfy", ";"),
    (1100, "xfy", "|"),
    (1050, "xfy", "->"),
    (1050, "xfy", "*->"),
    (1000, "xfy", ","),
    (990, "xfx", ":="),
    (900, "fy", "\\+"),
    (700, "xfx", "="),
    (700, "xfx", "\\="),
    (700, "xfx", "=="),
    (700, "xfx", "\\=="),
    (700, "xfx", "@<"),
    (700, "xfx", "@>"),
    (700, "xfx", "@=<"),
    (700, "xfx", "@>="),
    (700, "xfx", "=.."),
    (700, "xfx", "is"),
    (700, "xfx", "=:="),
    (700, "xfx", "=\\="),
    (700, "xfx", "<"),
    (700, "xfx", ">"),
    (700, "xfx", "=<"),
    (700, "xfx", ">="),
    (500, "yfx", "+"),
    (500, "yfx", "-"),
    (500, "yfx", "/\\"),
    (500, "yfx", "\\/"),
    (500, "yfx", "xor"),
    (400, "yfx", "*"),
    (400, "yfx", "/"),
    (400, "yfx", "//"),
    (400, "yfx", "rem"),
    (400, "yfx", "mod"),
    (400, "yfx", "div"),
    (400, "yfx", "<<"),
    (400, "yfx", ">>"),
    (200, "xfx", "**"),
    (200, "xfy", "^"),
    (200, "fy", "-"),
    (200, "fy", "+"),
    (200, "fy", "\\"),
    (100, "yfx", "."),
    (1, "fx", "$"),
]


class OperatorTable:
    """Mutable operator table with prefix/infix/postfix lookup."""

    def __init__(self) -> None:
        self._prefix: Dict[str, Op] = {}
        self._infix: Dict[str, Op] = {}
        self._postfix: Dict[str, Op] = {}

    def add(self, priority: int, type_: str, name: str) -> None:
        """Declare (or with priority 0, remove) an operator."""
        if type_ not in ALL_TYPES:
            raise TypeError_("operator_specifier", type_)
        if not 0 <= priority <= MAX_PRIORITY:
            raise TypeError_("operator_priority", priority)
        table = self._table_for(type_)
        if priority == 0:
            table.pop(name, None)
        else:
            table[name] = Op(priority, type_, name)

    def _table_for(self, type_: str) -> Dict[str, Op]:
        if type_ in PREFIX_TYPES:
            return self._prefix
        if type_ in INFIX_TYPES:
            return self._infix
        return self._postfix

    def prefix(self, name: str) -> Optional[Op]:
        return self._prefix.get(name)

    def infix(self, name: str) -> Optional[Op]:
        return self._infix.get(name)

    def postfix(self, name: str) -> Optional[Op]:
        return self._postfix.get(name)

    def is_operator(self, name: str) -> bool:
        return (
            name in self._prefix or name in self._infix or name in self._postfix
        )

    def lookup(self, name: str) -> Tuple[Optional[Op], Optional[Op], Optional[Op]]:
        """Return (prefix, infix, postfix) definitions for *name*."""
        return (
            self._prefix.get(name),
            self._infix.get(name),
            self._postfix.get(name),
        )

    def copy(self) -> "OperatorTable":
        clone = OperatorTable()
        clone._prefix = dict(self._prefix)
        clone._infix = dict(self._infix)
        clone._postfix = dict(self._postfix)
        return clone


def default_operators() -> OperatorTable:
    """A fresh table containing the standard operator set."""
    table = OperatorTable()
    for priority, type_, name in _DEFAULT_OPS:
        table.add(priority, type_, name)
    return table
