"""Prolog tokenizer.

Produces a flat token stream with source positions.  Token kinds:

==========  =====================================================
``atom``    unquoted names, quoted atoms, symbolic atoms, solo chars
``var``     variables (capitalised or ``_``-prefixed)
``int``     integers (decimal, ``0x``/``0o``/``0b``, ``0'c`` char codes)
``float``   floating point numbers
``string``  double-quoted strings (kept as Python str payload)
``punct``   ``( ) [ ] { } , |`` and the end-of-clause ``.``
``end``     the final sentinel
==========  =====================================================

A ``.`` followed by whitespace/EOF is the clause terminator (kind
``punct``, value ``end_of_clause``); otherwise it is an atom (the cons
functor / decimal point handling happens in the reader and number rules).

The tokenizer also flags whether an atom token is *immediately* followed
by ``(`` (functor application) via ``Token.functor``, and whether a token
was preceded by layout — needed to distinguish ``- 1`` from ``-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from ..errors import SyntaxError_

_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
_SOLO_CHARS = set("!,;|")
_PUNCT_CHARS = set("()[]{},|")


@dataclass
class Token:
    """One lexical token with position information."""

    kind: str
    value: object
    line: int
    column: int
    functor: bool = False  # atom immediately followed by '('
    layout_before: bool = field(default=False, repr=False)

    def is_punct(self, value: str) -> bool:
        return self.kind == "punct" and self.value == value


class _Scanner:
    """Character-level scanner with line/column tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def error(self, message: str) -> SyntaxError_:
        return SyntaxError_(message, self.line, self.column)


def tokenize(text: str) -> List[Token]:
    """Tokenize *text* into a list ending with an ``end`` sentinel."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    sc = _Scanner(text)
    layout = True  # beginning of input counts as layout
    while True:
        layout = _skip_layout(sc) or layout
        if sc.at_end():
            yield Token("end", None, sc.line, sc.column, layout_before=layout)
            return
        line, column = sc.line, sc.column
        ch = sc.peek()

        if ch == ".":
            nxt = sc.peek(1)
            if nxt == "" or nxt in " \t\n\r%" or nxt == "":
                sc.advance()
                yield Token("punct", "end_of_clause", line, column,
                            layout_before=layout)
                layout = False
                continue
            # fall through: symbolic atom or decimal handled below

        if ch.isdigit():
            tok = _scan_number(sc, line, column)
            tok.layout_before = layout
            yield tok
            layout = False
            continue

        if ch == "_" or ch.isalpha():
            name = _scan_name(sc)
            kind = "var" if (ch == "_" or ch.isupper()) else "atom"
            tok = Token(kind, name, line, column, layout_before=layout)
            if kind == "atom" and sc.peek() == "(":
                tok.functor = True
            yield tok
            layout = False
            continue

        if ch == "'":
            name = _scan_quoted(sc, "'")
            tok = Token("atom", name, line, column, layout_before=layout)
            if sc.peek() == "(":
                tok.functor = True
            yield tok
            layout = False
            continue

        if ch == '"':
            payload = _scan_quoted(sc, '"')
            yield Token("string", payload, line, column, layout_before=layout)
            layout = False
            continue

        if ch in _PUNCT_CHARS:
            sc.advance()
            if ch in ",|":
                # ',' and '|' double as atoms/operators; the reader decides.
                yield Token("atom", ch, line, column, layout_before=layout)
            else:
                yield Token("punct", ch, line, column, layout_before=layout)
            layout = False
            continue

        if ch in ("!", ";"):
            sc.advance()
            tok = Token("atom", ch, line, column, layout_before=layout)
            if sc.peek() == "(":
                tok.functor = True
            yield tok
            layout = False
            continue

        if ch in _SYMBOL_CHARS:
            name = _scan_symbol(sc)
            tok = Token("atom", name, line, column, layout_before=layout)
            if sc.peek() == "(":
                tok.functor = True
            yield tok
            layout = False
            continue

        raise sc.error(f"unexpected character {ch!r}")


def _skip_layout(sc: _Scanner) -> bool:
    """Skip whitespace and comments; return True if anything was skipped."""
    skipped = False
    while not sc.at_end():
        ch = sc.peek()
        if ch in " \t\r\n":
            sc.advance()
            skipped = True
        elif ch == "%":
            while not sc.at_end() and sc.peek() != "\n":
                sc.advance()
            skipped = True
        elif ch == "/" and sc.peek(1) == "*":
            sc.advance()
            sc.advance()
            while not sc.at_end():
                if sc.peek() == "*" and sc.peek(1) == "/":
                    sc.advance()
                    sc.advance()
                    break
                sc.advance()
            else:
                raise sc.error("unterminated block comment")
            skipped = True
        else:
            break
    return skipped


def _scan_name(sc: _Scanner) -> str:
    chars = []
    while not sc.at_end():
        ch = sc.peek()
        if ch == "_" or ch.isalnum():
            chars.append(sc.advance())
        else:
            break
    return "".join(chars)


def _scan_symbol(sc: _Scanner) -> str:
    chars = []
    while not sc.at_end() and sc.peek() in _SYMBOL_CHARS:
        chars.append(sc.advance())
    return "".join(chars)


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "a": "\a", "b": "\b",
    "f": "\f", "v": "\v", "\\": "\\", "'": "'", '"': '"', "`": "`",
    "0": "\0",
}


def _scan_quoted(sc: _Scanner, quote: str) -> str:
    sc.advance()  # opening quote
    chars: List[str] = []
    while True:
        if sc.at_end():
            raise sc.error("unterminated quoted token")
        ch = sc.advance()
        if ch == quote:
            if sc.peek() == quote:  # doubled quote = literal quote
                sc.advance()
                chars.append(quote)
                continue
            return "".join(chars)
        if ch == "\\":
            if sc.at_end():
                raise sc.error("unterminated escape")
            esc = sc.advance()
            if esc == "\n":  # line continuation
                continue
            if esc == "x":
                digits = []
                while sc.peek() and sc.peek() in "0123456789abcdefABCDEF":
                    digits.append(sc.advance())
                if sc.peek() == "\\":
                    sc.advance()
                if not digits:
                    raise sc.error("empty hex escape")
                chars.append(chr(int("".join(digits), 16)))
                continue
            mapped = _ESCAPES.get(esc)
            if mapped is None:
                raise sc.error(f"unknown escape \\{esc}")
            chars.append(mapped)
            continue
        chars.append(ch)


def _scan_number(sc: _Scanner, line: int, column: int) -> Token:
    # Special 0-prefixed forms.
    if sc.peek() == "0":
        nxt = sc.peek(1)
        if nxt == "'":
            sc.advance()
            sc.advance()
            if sc.at_end():
                raise sc.error("unterminated character code")
            ch = sc.advance()
            if ch == "\\":
                esc = sc.advance()
                mapped = _ESCAPES.get(esc)
                if mapped is None:
                    raise sc.error(f"unknown escape \\{esc}")
                ch = mapped
            elif ch == "'" and sc.peek() == "'":
                sc.advance()
            return Token("int", ord(ch), line, column)
        if nxt and nxt in "xX":
            sc.advance()
            sc.advance()
            return Token("int", _scan_radix(sc, 16), line, column)
        if nxt and nxt in "oO":
            sc.advance()
            sc.advance()
            return Token("int", _scan_radix(sc, 8), line, column)
        if nxt and nxt in "bB":
            sc.advance()
            sc.advance()
            return Token("int", _scan_radix(sc, 2), line, column)

    digits = []
    while not sc.at_end() and sc.peek().isdigit():
        digits.append(sc.advance())
    is_float = False
    if sc.peek() == "." and sc.peek(1).isdigit():
        is_float = True
        digits.append(sc.advance())
        while not sc.at_end() and sc.peek().isdigit():
            digits.append(sc.advance())
    if sc.peek() and sc.peek() in "eE":
        save = sc.pos, sc.line, sc.column
        exp = [sc.advance()]
        if sc.peek() and sc.peek() in "+-":
            exp.append(sc.advance())
        if sc.peek().isdigit():
            while not sc.at_end() and sc.peek().isdigit():
                exp.append(sc.advance())
            digits.extend(exp)
            is_float = True
        else:
            sc.pos, sc.line, sc.column = save
    text = "".join(digits)
    if is_float:
        return Token("float", float(text), line, column)
    return Token("int", int(text), line, column)


_RADIX_DIGITS = "0123456789abcdef"


def _scan_radix(sc: _Scanner, radix: int) -> int:
    valid = _RADIX_DIGITS[:radix]
    digits = []
    while not sc.at_end() and sc.peek().lower() in valid:
        digits.append(sc.advance())
    if not digits:
        raise sc.error(f"empty radix-{radix} literal")
    return int("".join(digits), radix)
