"""Sliding compaction of the global stack (heap) — paper §3.3.2.

The paper: "The global stack which is used to dynamically build complex
data structures, is garbage collected by means of a sliding incremental
garbage collector."  We implement a sliding (order-preserving) mark &
compact collector invoked at procedure-return safe points; "incremental"
shows up as frequent small collections governed by ``gc_threshold``
rather than one monolithic pause, and the collector can be disabled for
critical regions (``machine.gc_enabled``), as the paper requires.

Safety rules
------------
* Only the region above the *floor* — the heap mark of the query's
  bottom barrier — is collected; everything below it (the query goal
  itself and any prior-session data) is immovable.
* The collector refuses to run (the machine skips it) while nested
  barriers or generator choice points exist, because Python generators
  capture raw heap cells the collector cannot rewrite.
* Choice-point heap marks (``cp.h``) are remapped so backtracking
  truncation stays exact; trail addresses are roots, so every trail
  entry's slot survives.
"""

from __future__ import annotations

from typing import List, Set


def gc_allowed(machine) -> bool:
    """GC is safe only with at most the single bottom barrier and no
    generator choice points on the OR-stack."""
    barriers = 0
    cp = machine.b
    while cp is not None:
        if cp.kind == "gen":
            return False
        if cp.kind == "barrier":
            barriers += 1
            if barriers > 1:
                return False
        cp = cp.prev
    return True


def collect_heap(machine) -> int:
    """Mark & slide the heap above the floor; returns cells recovered."""
    if not gc_allowed(machine):
        return 0

    heap = machine.heap
    n = len(heap)
    floor = _find_floor(machine)
    if floor >= n:
        return 0

    live = bytearray(n)
    for i in range(floor):
        live[i] = 1

    worklist: List[int] = []

    def mark_target(cell) -> None:
        if cell is None:
            return
        tag = cell[0]
        if tag == "REF" or tag == "STR":
            addr = cell[1]
            if 0 <= addr < n and not live[addr]:
                worklist.append(addr)
        elif tag == "LIS":
            # A list cell references a *pair*: head at a, tail at a+1.
            addr = cell[1]
            if 0 <= addr < n:
                if not live[addr]:
                    worklist.append(addr)
                if addr + 1 < n and not live[addr + 1]:
                    worklist.append(addr + 1)

    # --- roots ----------------------------------------------------------
    for cell in machine.x:
        mark_target(cell)
    for holder in machine.rooted:
        mark_target(holder[0])

    envs = _collect_envs(machine)
    for env in envs:
        for cell in env.slots:
            if cell is not None and cell[0] != "LVL":
                mark_target(cell)
    cp = machine.b
    while cp is not None:
        for cell in cp.args:
            mark_target(cell)
        cp = cp.prev

    # Cells below the floor may point above it (bindings made after the
    # barrier was pushed).
    for i in range(floor):
        _mark_cell_refs(heap[i], mark_target, machine)

    # --- mark ------------------------------------------------------------
    dictionary = machine.dictionary
    while worklist:
        addr = worklist.pop()
        if live[addr]:
            continue
        live[addr] = 1
        cell = heap[addr]
        tag = cell[0]
        if tag == "REF":
            target = cell[1]
            if target != addr and not live[target]:
                worklist.append(target)
        elif tag == "STR":
            a = cell[1]
            if not live[a]:
                worklist.append(a)
            arity = dictionary.arity(heap[a][1])
            for k in range(1, arity + 1):
                if not live[a + k]:
                    worklist.append(a + k)
        elif tag == "LIS":
            a = cell[1]
            if not live[a]:
                worklist.append(a)
            if not live[a + 1]:
                worklist.append(a + 1)
        elif tag == "FUN":
            arity = dictionary.arity(cell[1])
            for k in range(1, arity + 1):
                if not live[addr + k]:
                    worklist.append(addr + k)

    # --- pinned trail slots ------------------------------------------------
    # Trail entries must keep their *slot* (unwinding writes to it) but
    # their contents are dead unless reachable from a real root; pinning
    # without tracing lets the bound junk go (a cut can strand arbitrary
    # amounts of trailed garbage otherwise).
    pinned = set()
    for addr in machine.trail:
        if addr < n and not live[addr]:
            live[addr] = 1
            pinned.add(addr)

    # --- compute relocation ------------------------------------------------
    new_addr = [0] * n
    cursor = 0
    for i in range(n):
        new_addr[i] = cursor
        if live[i]:
            cursor += 1
    recovered = n - cursor
    if recovered == 0:
        return 0

    def relocate(cell):
        if cell is None:
            return None
        tag = cell[0]
        if tag == "REF" or tag == "STR" or tag == "LIS":
            addr = cell[1]
            if 0 <= addr < n:
                return (tag, new_addr[addr])
        return cell

    # --- slide ----------------------------------------------------------
    new_heap = []
    for i in range(n):
        if live[i]:
            if i in pinned:
                # Unreachable trailed slot: reset to unbound now; the
                # eventual trail unwind would do the same.
                pos = new_addr[i]
                new_heap.append(("REF", pos))
            else:
                new_heap.append(relocate(heap[i]))
    machine.heap = new_heap

    # --- rewrite roots ------------------------------------------------------
    machine.x = [relocate(c) for c in machine.x]
    for holder in machine.rooted:
        holder[0] = relocate(holder[0])
    machine.trail = [new_addr[a] for a in machine.trail if a < n]
    for env in envs:
        env.slots = [
            c if (c is not None and c[0] == "LVL") else relocate(c)
            for c in env.slots
        ]
    cp = machine.b
    while cp is not None:
        cp.args = tuple(relocate(c) for c in cp.args)
        # cp.h maps to the number of live cells below the old mark.
        cp.h = _live_prefix(live, new_addr, cp.h, n)
        cp = cp.prev

    return recovered


def _live_prefix(live: bytearray, new_addr: List[int], h: int, n: int) -> int:
    if h >= n:
        return new_addr[n - 1] + live[n - 1] if n else 0
    return new_addr[h]


def _mark_cell_refs(cell, mark_target, machine) -> None:
    """Mark addresses referenced by an (immovable) below-floor cell."""
    tag = cell[0]
    if tag == "REF" or tag == "STR" or tag == "LIS":
        mark_target(cell)


def _find_floor(machine) -> int:
    """Heap mark of the bottom-most barrier (0 if none)."""
    floor = 0
    cp = machine.b
    while cp is not None:
        if cp.kind == "barrier":
            floor = cp.h
        cp = cp.prev
    return floor


def _collect_envs(machine) -> List:
    seen: Set[int] = set()
    envs: List = []

    def add_chain(env) -> None:
        while env is not None and id(env) not in seen:
            seen.add(id(env))
            envs.append(env)
            env = env.prev

    add_chain(machine.e)
    cp = machine.b
    while cp is not None:
        add_chain(cp.e)
        cp = cp.prev
    return envs
