"""Label resolution for WAM code blocks.

Code generators emit ``(LABEL, name)`` pseudo-instructions and symbolic
label operands; :func:`assemble` strips the pseudo-instructions and
rewrites every label operand into an integer offset within the block.

The same pass is used by the compiler (procedure code) and by the
EDB dynamic loader, which splices control code around clause code
retrieved from secondary storage (paper §3.1: "adds procedural and other
forms of control code to the clausal code stored in the EDB").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import MachineError
from . import instructions as I

_LABEL_OPERAND_OPS = {
    I.TRY_ME_ELSE,
    I.RETRY_ME_ELSE,
    I.TRY,
    I.RETRY,
    I.TRUST,
}

#: When true, every assembled block is structurally verified
#: (:mod:`repro.analysis.verifier`).  Enabled by the test suite via
#: :func:`repro.analysis.enable_self_verify`; off in production — the
#: dynamic loader has its own configurable verification level.
_SELF_VERIFY = False


def set_self_verify(enabled: bool) -> None:
    global _SELF_VERIFY
    _SELF_VERIFY = bool(enabled)


def self_verify_enabled() -> bool:
    return _SELF_VERIFY


def assemble(code: List[tuple]) -> List[tuple]:
    """Resolve labels to offsets; returns a new executable code block."""
    return assemble_with_offsets(code)[0]


def assemble_with_offsets(code: List[tuple]
                          ) -> Tuple[List[tuple], Dict[str, int]]:
    """Like :func:`assemble`, but also return the label→offset map —
    the determinism analysis uses it to locate clause entry points in
    the assembled block."""
    offsets: Dict[str, int] = {}
    stripped: List[tuple] = []
    for instr in code:
        if instr[0] == I.LABEL:
            name = instr[1]
            if name in offsets:
                raise MachineError(f"duplicate label {name!r}")
            offsets[name] = len(stripped)
        else:
            stripped.append(instr)

    def resolve(label: str) -> int:
        if label not in offsets:
            raise MachineError(f"undefined label {label!r}")
        return offsets[label]

    out: List[tuple] = []
    for instr in stripped:
        op = instr[0]
        if op in _LABEL_OPERAND_OPS:
            out.append((op, resolve(instr[1])))
        elif op == I.SWITCH_ON_TERM:
            out.append((
                op,
                resolve(instr[1]),
                resolve(instr[2]),
                resolve(instr[3]),
                resolve(instr[4]),
            ))
        elif op in (I.SWITCH_ON_CONSTANT, I.SWITCH_ON_STRUCTURE):
            table = {key: resolve(lbl) for key, lbl in instr[1].items()}
            out.append((op, table, resolve(instr[2])))
        elif op == I.SWITCH_ON_ARG:
            table = {key: resolve(lbl) for key, lbl in instr[2].items()}
            out.append((op, instr[1], table,
                        resolve(instr[3]), resolve(instr[4])))
        else:
            out.append(instr)
    if _SELF_VERIFY:
        from ..analysis.verifier import verify_code
        verify_code(out, level="structural")
    return out, offsets
