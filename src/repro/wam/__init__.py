"""A Warren Abstract Machine in Python (paper §2.1, §3.2).

The WAM is the compilation model of Educe*: the incremental compiler
(:mod:`repro.wam.compiler`) produces term-oriented instructions — one
instruction per Prolog term — and the emulator (:mod:`repro.wam.machine`)
executes them over a tagged-cell heap with choice points, a trail and
environments.  First-argument indexing on *type and value*
(:mod:`repro.wam.indexing`) turns non-deterministic procedures into
deterministic ones, which the paper identifies as the key lever on
choice-point traffic (§3.2.1/§3.2.2).
"""

from .compiler import ClauseCompiler, compile_clause, compile_procedure
from .instructions import format_code
from .machine import Machine, Procedure, Solution
from . import builtins as _builtins  # noqa: F401  (registers builtin indicators)

__all__ = [
    "Machine",
    "Procedure",
    "Solution",
    "ClauseCompiler",
    "compile_clause",
    "compile_procedure",
    "format_code",
]
