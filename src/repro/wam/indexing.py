"""First-argument indexing on type and value (paper §3.2.2).

For a multi-clause procedure we emit a ``switch_on_term`` dispatching on
the dereferenced first argument's *type*:

* unbound  → the full ``try_me_else`` chain over all clauses;
* constant → ``switch_on_constant`` over the clause set keyed by value;
* list     → the chain of list-headed (plus var-headed) clauses;
* structure→ ``switch_on_structure`` keyed by functor.

Clauses whose first head argument is a variable match *every* key and are
woven into each chain at their original position, preserving the standard
clause-selection order.  When the matching set for a key is a single
clause, the switch jumps straight to the clause code — **no choice point
is created**, which is precisely the determinism transformation the paper
credits with eliminating the dominant class of data references (§3.2.1).

The paper also notes that indexing on *type* is "a feature of no value to
a relational DBMS [but] very effective in an inferential engine"; the
type dispatch of ``switch_on_term`` is that feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from . import instructions as I
from .assembler import assemble, assemble_with_offsets
from .compiler import CompiledClause

_FAIL_LABEL = "$fail"


@dataclass
class ProcedureLayout:
    """An assembled procedure block plus its structural map — where each
    clause's code begins and where the shared failure sentinel sits.
    The determinism analysis (:mod:`repro.analysis.determinism`) uses
    the entry offsets to check switch-table coverage and reachability.
    """

    code: List[tuple]
    #: per-clause entry offset (past the choice instruction, the target
    #: indexed jumps use) in clause-source order
    entries: List[int] = field(default_factory=list)
    #: offset of the trailing ``fail`` sentinel, when one was emitted
    fail_offset: Optional[int] = None


def build_procedure_code(
    clauses: Sequence[CompiledClause], index: bool = True,
    optimizer=None,
) -> List[tuple]:
    """Combine compiled clauses into one code block with choice
    instructions and (optionally) first-argument indexing."""
    return build_procedure_layout(clauses, index=index,
                                  optimizer=optimizer).code


def build_procedure_layout(
    clauses: Sequence[CompiledClause], index: bool = True,
    optimizer=None,
) -> ProcedureLayout:
    """As :func:`build_procedure_code`, keeping the layout map.

    With an enabled *optimizer* (:class:`repro.wam.optimizer.Optimizer`)
    each clause's code is peephole-fused and provably deterministic
    chains are demoted behind ``switch_on_arg`` guards.  Callers wanting
    the verified fall-back behaviour should go through
    :func:`repro.wam.optimizer.build_optimized_block` instead of passing
    the optimizer here directly.
    """
    if not clauses:
        return ProcedureLayout(code=assemble([(I.FAIL_OP,)]))

    if optimizer is not None and optimizer.fuse_enabled:
        clauses = [optimizer.fuse_compiled(c) for c in clauses]

    if len(clauses) == 1:
        return ProcedureLayout(code=assemble(list(clauses[0].code)),
                               entries=[0])

    out: List[tuple] = []
    entry_labels = [f"$clause_{i}" for i in range(len(clauses))]

    use_switch = (
        index
        and clauses[0].arity > 0
        and any(c.first_arg_kind != "var" for c in clauses)
    )

    demote = optimizer is not None and optimizer.dispatch_enabled

    #: sub-chains referenced by generalized guards, emitted after the
    #: clause bodies (just before ``$fail``) so the main layout stays
    #: byte-identical whenever no mode-driven guard fires
    pending: List[Tuple[str, List[int]]] = []

    if use_switch:
        _emit_switch(out, clauses, entry_labels,
                     optimizer if demote else None, pending)

    # The variable-entry chain: try_me_else over all clauses, with clause
    # code inline.  Clause entry labels point past the choice instruction
    # so indexed jumps skip choice-point creation.
    out.append((I.LABEL, "$var_entry"))
    if demote:
        # Guard the full chain too: with the switch in front, X0 here is
        # known unbound, so only positions >= 1 can decide; without a
        # switch (index=False procedures) any position qualifies.
        plan = optimizer.plan_guard(
            clauses, list(range(len(clauses))),
            min_arg=1 if use_switch else 0)
        if plan is not None:
            _emit_guard(out, plan, entry_labels, "$var_seq", pending)
            out.append((I.LABEL, "$var_seq"))
    last = len(clauses) - 1
    for i, clause in enumerate(clauses):
        if i == 0:
            out.append((I.TRY_ME_ELSE, "$alt_1"))
        elif i < last:
            out.append((I.LABEL, f"$alt_{i}"))
            out.append((I.RETRY_ME_ELSE, f"$alt_{i + 1}"))
        else:
            out.append((I.LABEL, f"$alt_{i}"))
            out.append((I.TRUST_ME,))
        out.append((I.LABEL, entry_labels[i]))
        out.extend(clause.code)

    for label, positions in pending:
        out.append((I.LABEL, label))
        sub_last = len(positions) - 1
        for j, pos in enumerate(positions):
            if j == 0:
                out.append((I.TRY, entry_labels[pos]))
            elif j < sub_last:
                out.append((I.RETRY, entry_labels[pos]))
            else:
                out.append((I.TRUST, entry_labels[pos]))

    out.append((I.LABEL, _FAIL_LABEL))
    out.append((I.FAIL_OP,))
    code, offsets = assemble_with_offsets(out)
    return ProcedureLayout(
        code=code,
        entries=[offsets[label] for label in entry_labels],
        fail_offset=offsets[_FAIL_LABEL])


def _emit_guard(out: List[tuple], plan, entry_labels: List[str],
                seq_label: str, pending: List[Tuple[str, List[int]]]
                ) -> None:
    """Emit one ``switch_on_arg`` from a
    :class:`~repro.wam.optimizer.GuardPlan`.  Multi-clause dispatch
    targets become sub-chain labels queued on *pending* (emitted before
    ``$fail``); singleton targets jump straight to the clause entry —
    which makes the legacy pairwise-distinct plan's emission identical
    to what this module always produced."""

    def target(positions) -> str:
        if not positions:
            return _FAIL_LABEL
        if len(positions) == 1:
            return entry_labels[positions[0]]
        label = f"$sub_{len(pending)}"
        pending.append((label, list(positions)))
        return label

    table = {key: target(positions)
             for key, positions in plan.table.items()}
    out.append((I.SWITCH_ON_ARG, plan.argpos, table, seq_label,
                target(plan.var_positions)))


def _emit_switch(out: List[tuple], clauses: Sequence[CompiledClause],
                 entry_labels: List[str], optimizer,
                 pending: List[Tuple[str, List[int]]]) -> None:
    var_positions = [
        i for i, c in enumerate(clauses) if c.first_arg_kind == "var"
    ]

    # --- constants -----------------------------------------------------
    const_keys: List[tuple] = []
    for c in clauses:
        if c.first_arg_kind in ("constant", "nil") and c.first_arg_key not in const_keys:
            const_keys.append(c.first_arg_key)  # type: ignore[arg-type]
    # --- structures ----------------------------------------------------
    struct_keys: List[tuple] = []
    for c in clauses:
        if c.first_arg_kind == "structure" and c.first_arg_key not in struct_keys:
            struct_keys.append(c.first_arg_key)  # type: ignore[arg-type]
    has_list = any(c.first_arg_kind == "list" for c in clauses)

    chains: List[Tuple[str, List[int]]] = []  # (label, clause positions)

    def chain_label(positions: List[int], tag: str) -> str:
        """Label reaching exactly *positions* (direct jump when single)."""
        if not positions:
            return _FAIL_LABEL
        if len(positions) == 1:
            return entry_labels[positions[0]]
        label = f"$chain_{tag}_{len(chains)}"
        chains.append((label, positions))
        return label

    # Constant dispatch.
    const_table: Dict[tuple, str] = {}
    for key in const_keys:
        positions = sorted(
            set(var_positions)
            | {
                i
                for i, c in enumerate(clauses)
                if c.first_arg_kind in ("constant", "nil")
                and c.first_arg_key == key
            }
        )
        const_table[key] = chain_label(positions, "con")
    const_default = chain_label(sorted(var_positions), "cdef")

    # Structure dispatch.
    struct_table: Dict[tuple, str] = {}
    for key in struct_keys:
        positions = sorted(
            set(var_positions)
            | {
                i
                for i, c in enumerate(clauses)
                if c.first_arg_kind == "structure" and c.first_arg_key == key
            }
        )
        struct_table[key] = chain_label(positions, "str")
    struct_default = chain_label(sorted(var_positions), "sdef")

    # List dispatch.
    list_positions = sorted(
        set(var_positions)
        | {i for i, c in enumerate(clauses) if c.first_arg_kind == "list"}
    )
    list_label = chain_label(list_positions, "lis") if (
        has_list or var_positions) else _FAIL_LABEL

    out.append((
        I.SWITCH_ON_TERM,
        "$var_entry",
        "$con_entry" if const_table else const_default,
        list_label,
        "$str_entry" if struct_table else struct_default,
    ))
    if const_table:
        out.append((I.LABEL, "$con_entry"))
        out.append((I.SWITCH_ON_CONSTANT, const_table, const_default))
    if struct_table:
        out.append((I.LABEL, "$str_entry"))
        out.append((I.SWITCH_ON_STRUCTURE, struct_table, struct_default))

    # Emit the try/retry/trust chains, each demoted behind a
    # switch_on_arg guard when the optimizer proves it deterministic on
    # some argument position (docs/OPTIMIZER.md).  X0 is already fixed
    # by the switch that reaches the chain, so only positions >= 1 can
    # discriminate further.
    for label, positions in chains:
        out.append((I.LABEL, label))
        plan = (optimizer.plan_guard(clauses, positions, min_arg=1)
                if optimizer is not None else None)
        if plan is not None:
            _emit_guard(out, plan, entry_labels, f"$seq_{label[1:]}",
                        pending)
            out.append((I.LABEL, f"$seq_{label[1:]}"))
        last = len(positions) - 1
        for j, pos in enumerate(positions):
            if j == 0:
                out.append((I.TRY, entry_labels[pos]))
            elif j < last:
                out.append((I.RETRY, entry_labels[pos]))
            else:
                out.append((I.TRUST, entry_labels[pos]))
