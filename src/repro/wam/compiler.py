"""Term-oriented clause compiler (paper §2.1, §3.1).

Compiles surface clauses into WAM instruction tuples: one ``get``/``put``/
``unify`` instruction per Prolog term, plus control instructions for
procedure calls, backtracking and cut.

Design decisions (documented deviations from the letter of Warren's
machine, none observable in behaviour):

* ``put_variable`` always allocates the fresh variable **on the heap**,
  including for permanent (Y) variables.  This removes the entire
  unsafe-variable problem: ``put_unsafe_value`` and ``unify_local_value``
  degenerate to their plain ``value`` forms.  Several production systems
  make the same trade (slightly more heap, no dangling stack refs).
* Control constructs — ``;/2``, ``->/2``, ``\\+/1`` — are compiled by
  extraction into auxiliary procedures (``$aux_k``) with the construct's
  variables as arguments, the classic source-to-source scheme.
* Cut: any clause containing ``!`` gets an environment with a reserved
  permanent slot holding the choice-point level saved by ``get_level``;
  each ``!`` becomes ``cut Yk``.

A variable is *permanent* when it occurs in more than one body chunk
(head + first body goal form one chunk); permanents live in Y slots, all
other variables get a unique X register above the argument registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dictionary import SegmentedDictionary
from ..errors import TypeError_
from ..terms import NIL, Atom, Struct, Term, Var, deref
from . import instructions as I

# Predicates implemented by machine escapes; the compiler routes goals with
# these indicators through the ESCAPE instruction.  (Populated by
# machine.builtins at import time via register_builtin_indicator.)
_BUILTIN_INDICATORS: set = set()


def register_builtin_indicator(name: str, arity: int) -> None:
    _BUILTIN_INDICATORS.add((name, arity))


def is_builtin_indicator(name: str, arity: int) -> bool:
    return (name, arity) in _BUILTIN_INDICATORS


# When true, every compiled clause is verified (structural + abstract,
# :mod:`repro.analysis.verifier`) before it leaves the compiler.  The
# test suite enables it via :func:`repro.analysis.enable_self_verify`.
_SELF_VERIFY = False


def set_self_verify(enabled: bool) -> None:
    global _SELF_VERIFY
    _SELF_VERIFY = bool(enabled)


def self_verify_enabled() -> bool:
    return _SELF_VERIFY


@dataclass
class CompiledClause:
    """One compiled clause plus the metadata indexing needs."""

    code: List[tuple]
    head_name: str
    arity: int
    first_arg_kind: str          # 'var' | 'constant' | 'list' | 'structure' | 'nil'
    first_arg_key: Optional[tuple]  # ('atom', id) | ('int', v) | ('flt', v) | fid
    nvars: int = 0
    #: per-argument (kind, key) for *every* head position — the
    #: determinism-driven dispatch pass (repro.wam.optimizer) partitions
    #: chains on any argument, not just the first.  ``None`` (the
    #: default) means "unknown", which disables chain demotion for this
    #: clause.
    arg_keys: Optional[Tuple[Tuple[str, Optional[tuple]], ...]] = None


class CompileContext:
    """Shared compilation state: the dictionary and an aux-procedure sink.

    ``define_procedure(name, arity, clauses)`` is called for every
    auxiliary predicate the compiler synthesises for control constructs;
    the machine registers and compiles them like user procedures.
    """

    # Process-wide counter: auxiliary names must be unique across every
    # context (main-memory compiles and EDB stores share a namespace).
    _aux_counter = 0

    def __init__(
        self,
        dictionary: SegmentedDictionary,
        define_procedure: Optional[Callable[[str, int, list], None]] = None,
    ):
        self.dictionary = dictionary
        self.define_procedure = define_procedure or (lambda n, a, c: None)

    def fresh_aux_name(self) -> str:
        CompileContext._aux_counter += 1
        return f"$aux_{CompileContext._aux_counter}"

    def intern(self, name: str, arity: int) -> int:
        return self.dictionary.intern(name, arity)


def split_clause(clause: Term) -> Tuple[Term, List[Term]]:
    """Split ``Head :- Body`` into (head, [goal...]); facts get []."""
    clause = deref(clause)
    if isinstance(clause, Struct) and clause.indicator == (":-", 2):
        head = deref(clause.args[0])
        body = _flatten_conj(clause.args[1])
    else:
        head = clause
        body = []
    if not isinstance(head, (Atom, Struct)):
        raise TypeError_("callable head", head)
    return head, body


def _flatten_conj(goal: Term) -> List[Term]:
    goal = deref(goal)
    if isinstance(goal, Struct) and goal.indicator == (",", 2):
        return _flatten_conj(goal.args[0]) + _flatten_conj(goal.args[1])
    if goal is Atom("true"):
        return []
    return [goal]


def _goal_vars(term: Term, acc: Optional[dict] = None) -> dict:
    """Ordered {id(var): var} of variables in *term*."""
    if acc is None:
        acc = {}
    term = deref(term)
    if isinstance(term, Var):
        acc.setdefault(id(term), term)
    elif isinstance(term, Struct):
        for a in term.args:
            _goal_vars(a, acc)
    return acc


class ClauseCompiler:
    """Compiles one clause at a time within a :class:`CompileContext`."""

    CUT_ATOM = Atom("!")

    def __init__(self, context: CompileContext):
        self.ctx = context

    # ------------------------------------------------------------- top level

    def compile_clause(self, clause: Term) -> CompiledClause:
        head, body = split_clause(clause)
        body = self._preprocess_body(body)

        head_args: Sequence[Term] = head.args if isinstance(head, Struct) else ()
        arity = len(head_args)
        goals = body

        has_cut = any(deref(g) is self.CUT_ATOM for g in goals)
        perm_vars = self._permanent_vars(head_args, goals)

        # call/N transfers control from inside an escape by overwriting
        # the continuation register; the clause must have an environment
        # so deallocate restores the caller's continuation afterwards.
        has_transfer = any(
            isinstance(deref(g), Struct)
            and deref(g).name == "call"
            and is_builtin_indicator("call", deref(g).arity)
            for g in goals
        )

        # Environment needed for multi-goal bodies, permanents, or cut.
        needs_env = (len(goals) > 1 or bool(perm_vars) or has_cut
                     or has_transfer)

        state = _ClauseState(
            ctx=self.ctx,
            arity=arity,
            goals=goals,
            perm_index={vid: i for i, vid in enumerate(perm_vars)},
            cut_slot=len(perm_vars) if has_cut else None,
            temp_base=self._temp_base(arity, goals),
        )

        code: List[tuple] = []
        nperm = len(perm_vars) + (1 if has_cut else 0)
        if needs_env:
            code.append((I.ALLOCATE, nperm))
            if has_cut:
                code.append((I.GET_LEVEL, ("y", state.cut_slot)))

        # Head argument unification: one instruction per term (§2.1).
        for i, arg in enumerate(head_args):
            self._compile_head_arg(state, code, arg, i)

        # Body.
        if not goals:
            code.append((I.PROCEED,))
        else:
            for pos, goal in enumerate(goals):
                last = pos == len(goals) - 1
                self._compile_goal(state, code, goal, last, needs_env)

        arg_keys = tuple(self._arg_index_key(arg) for arg in head_args)
        first_kind, first_key = arg_keys[0] if arg_keys else ("var", None)
        name = head.name if isinstance(head, Struct) else head.name
        compiled = CompiledClause(
            code=code,
            head_name=name,
            arity=arity,
            first_arg_kind=first_kind,
            first_arg_key=first_key,
            nvars=len(perm_vars) + len(state.temp_index),
            arg_keys=arg_keys,
        )
        if _SELF_VERIFY:
            from ..analysis.verifier import verify_clause
            verify_clause(compiled, dictionary=self.ctx.dictionary,
                          procedure=f"{name}/{arity}")
        return compiled

    # ------------------------------------------------- control preprocessing

    def _preprocess_body(self, goals: List[Term]) -> List[Term]:
        out: List[Term] = []
        for goal in goals:
            out.extend(self._preprocess_goal(goal))
        return out

    def _preprocess_goal(self, goal: Term) -> List[Term]:
        goal = deref(goal)
        if isinstance(goal, Var):
            return [Struct("call", (goal,))]
        if isinstance(goal, Struct):
            ind = goal.indicator
            if ind == (",", 2):
                return (
                    self._preprocess_goal(goal.args[0])
                    + self._preprocess_goal(goal.args[1])
                )
            if ind == (";", 2):
                return [self._extract_disjunction(goal)]
            if ind == ("->", 2):
                # Bare if-then == (C -> T ; fail).
                return [self._extract_disjunction(
                    Struct(";", (goal, Atom("fail"))))]
            if ind in (("\\+", 1), ("not", 1)):
                return [self._extract_negation(goal.args[0])]
        return [goal]

    def _construct_args(self, construct: Term) -> List[Var]:
        return list(_goal_vars(construct).values())

    def _extract_disjunction(self, goal: Struct) -> Term:
        """(A ; B) [with -> arms] becomes a fresh auxiliary procedure."""
        args = self._construct_args(goal)
        name = self.ctx.fresh_aux_name()
        clauses: List[Term] = []
        head = self._make_goal(name, args)
        for branch in self._flatten_disj(goal):
            branch = deref(branch)
            if isinstance(branch, Struct) and branch.indicator == ("->", 2):
                cond, then = branch.args
                body = Struct(",", (cond, Struct(",", (Atom("!"), then))))
                clauses.append(Struct(":-", (head, body)))
            elif branch is Atom("fail"):
                continue
            else:
                clauses.append(Struct(":-", (head, branch)))
        if not clauses:  # e.g. (C -> T ; fail) with no else and fail arms
            clauses.append(Struct(":-", (head, Atom("fail"))))
        self.ctx.define_procedure(name, len(args), clauses)
        return self._make_goal(name, args)

    def _flatten_disj(self, goal: Term) -> List[Term]:
        goal = deref(goal)
        if isinstance(goal, Struct) and goal.indicator == (";", 2):
            left = deref(goal.args[0])
            # (C -> T ; E): the arrow binds to this disjunction only.
            if isinstance(left, Struct) and left.indicator == ("->", 2):
                return [left] + self._flatten_disj(goal.args[1])
            return self._flatten_disj(goal.args[0]) + self._flatten_disj(
                goal.args[1])
        return [goal]

    def _extract_negation(self, inner: Term) -> Term:
        args = self._construct_args(inner)
        name = self.ctx.fresh_aux_name()
        head = self._make_goal(name, args)
        clauses = [
            Struct(":-", (head, Struct(",", (
                inner, Struct(",", (Atom("!"), Atom("fail"))))))),
            head if not args else Struct(
                name, tuple(Var() for _ in args)),
        ]
        self.ctx.define_procedure(name, len(args), clauses)
        return self._make_goal(name, args)

    @staticmethod
    def _make_goal(name: str, args: List[Var]) -> Term:
        if not args:
            return Atom(name)
        return Struct(name, tuple(args))

    # -------------------------------------------------------- var assignment

    def _permanent_vars(
        self, head_args: Sequence[Term], goals: List[Term]
    ) -> List[int]:
        """ids of variables occurring in >1 chunk (head+goal1 = chunk one)."""
        chunks: List[dict] = []
        first: dict = {}
        for arg in head_args:
            _goal_vars(arg, first)
        if goals:
            _goal_vars(goals[0], first)
        chunks.append(first)
        for goal in goals[1:]:
            chunks.append(_goal_vars(goal))
        counts: Dict[int, int] = {}
        order: List[int] = []
        for chunk in chunks:
            for vid in chunk:
                if vid not in counts:
                    counts[vid] = 0
                    order.append(vid)
                counts[vid] += 1
        return [vid for vid in order if counts[vid] > 1]

    @staticmethod
    def _temp_base(arity: int, goals: List[Term]) -> int:
        m = arity
        for goal in goals:
            goal = deref(goal)
            if isinstance(goal, Struct):
                m = max(m, goal.arity)
        return m

    # ----------------------------------------------------------- head codegen

    def _compile_head_arg(self, st: "_ClauseState", code: List[tuple],
                          arg: Term, position: int) -> None:
        arg = deref(arg)
        ai = ("x", position)
        if isinstance(arg, Var):
            reg, first = st.var_register(arg)
            code.append((I.GET_VARIABLE if first else I.GET_VALUE, reg, ai))
            return
        if isinstance(arg, Atom):
            if arg is NIL:
                code.append((I.GET_NIL, ai))
            else:
                code.append((I.GET_CONSTANT, st.const(arg), ai))
            return
        if isinstance(arg, (int, float)):
            code.append((I.GET_CONSTANT, st.const(arg), ai))
            return
        assert isinstance(arg, Struct)
        queue: List[Tuple[tuple, Struct]] = []
        self._head_structure(st, code, arg, ai, queue)
        while queue:
            reg, sub = queue.pop(0)
            self._head_structure(st, code, sub, reg, queue)

    def _head_structure(self, st: "_ClauseState", code: List[tuple],
                        term: Struct, reg: tuple,
                        queue: List[Tuple[tuple, Struct]]) -> None:
        if term.indicator == (".", 2):
            code.append((I.GET_LIST, reg))
        else:
            fid = st.functor(term)
            code.append((I.GET_STRUCTURE, fid, reg))
        for sub in term.args:
            sub = deref(sub)
            if isinstance(sub, Var):
                sreg, first = st.var_register(sub)
                code.append(
                    (I.UNIFY_VARIABLE if first else I.UNIFY_VALUE, sreg))
            elif isinstance(sub, Atom):
                if sub is NIL:
                    code.append((I.UNIFY_NIL,))
                else:
                    code.append((I.UNIFY_CONSTANT, st.const(sub)))
            elif isinstance(sub, (int, float)):
                code.append((I.UNIFY_CONSTANT, st.const(sub)))
            else:
                assert isinstance(sub, Struct)
                fresh = st.fresh_temp()
                code.append((I.UNIFY_VARIABLE, fresh))
                queue.append((fresh, sub))

    # ----------------------------------------------------------- body codegen

    def _compile_goal(self, st: "_ClauseState", code: List[tuple],
                      goal: Term, last: bool, has_env: bool) -> None:
        goal = deref(goal)

        if goal is self.CUT_ATOM:
            code.append((I.CUT, ("y", st.cut_slot)))
            if last:
                self._epilogue(code, has_env)
            return
        if goal is Atom("true"):
            if last:
                self._epilogue(code, has_env)
            return
        if goal is Atom("fail") or goal is Atom("false"):
            code.append((I.FAIL_OP,))
            return

        name, arity, args = self._goal_parts(goal)

        # Load argument registers.
        for i, arg in enumerate(args):
            self._compile_put(st, code, arg, i)

        if is_builtin_indicator(name, arity):
            code.append((I.ESCAPE, name, arity))
            if last:
                self._epilogue(code, has_env)
            return

        pid = self.ctx.intern(name, arity)
        if last:
            if has_env:
                code.append((I.DEALLOCATE,))
            code.append((I.EXECUTE, pid, arity))
        else:
            code.append((I.CALL, pid, arity))

    @staticmethod
    def _epilogue(code: List[tuple], has_env: bool) -> None:
        if has_env:
            code.append((I.DEALLOCATE,))
        code.append((I.PROCEED,))

    @staticmethod
    def _goal_parts(goal: Term) -> Tuple[str, int, Sequence[Term]]:
        if isinstance(goal, Atom):
            return goal.name, 0, ()
        if isinstance(goal, Struct):
            return goal.name, goal.arity, goal.args
        raise TypeError_("callable goal", goal)

    def _compile_put(self, st: "_ClauseState", code: List[tuple],
                     arg: Term, position: int) -> None:
        arg = deref(arg)
        ai = ("x", position)
        if isinstance(arg, Var):
            reg, first = st.var_register(arg)
            code.append((I.PUT_VARIABLE if first else I.PUT_VALUE, reg, ai))
            return
        if isinstance(arg, Atom):
            if arg is NIL:
                code.append((I.PUT_NIL, ai))
            else:
                code.append((I.PUT_CONSTANT, st.const(arg), ai))
            return
        if isinstance(arg, (int, float)):
            code.append((I.PUT_CONSTANT, st.const(arg), ai))
            return
        assert isinstance(arg, Struct)
        self._put_structure(st, code, arg, ai)

    def _put_structure(self, st: "_ClauseState", code: List[tuple],
                       term: Struct, target: tuple) -> None:
        """Bottom-up structure construction: children first."""
        child_regs: List[Optional[tuple]] = []
        for sub in term.args:
            sub = deref(sub)
            if isinstance(sub, Struct):
                fresh = st.fresh_temp()
                self._put_structure(st, code, sub, fresh)
                child_regs.append(fresh)
            else:
                child_regs.append(None)
        if term.indicator == (".", 2):
            code.append((I.PUT_LIST, target))
        else:
            code.append((I.PUT_STRUCTURE, st.functor(term), target))
        for sub, creg in zip(term.args, child_regs):
            sub = deref(sub)
            if creg is not None:
                code.append((I.UNIFY_VALUE, creg))
            elif isinstance(sub, Var):
                reg, first = st.var_register(sub)
                code.append(
                    (I.UNIFY_VARIABLE if first else I.UNIFY_VALUE, reg))
            elif isinstance(sub, Atom):
                if sub is NIL:
                    code.append((I.UNIFY_NIL,))
                else:
                    code.append((I.UNIFY_CONSTANT, st.const(sub)))
            else:
                code.append((I.UNIFY_CONSTANT, st.const(sub)))

    # -------------------------------------------------------------- indexing

    def _arg_index_key(self, arg: Term) -> Tuple[str, Optional[tuple]]:
        """(kind, key) of one head argument — position 0 drives the
        first-argument switch (§3.2.2), the full tuple drives the
        optimizer's per-argument chain demotion."""
        arg = deref(arg)
        if isinstance(arg, Var):
            return ("var", None)
        if arg is NIL:
            return ("nil", ("atom", self.ctx.intern("[]", 0)))
        if isinstance(arg, Atom):
            return ("constant", ("atom", self.ctx.intern(arg.name, 0)))
        if isinstance(arg, int):
            return ("constant", ("int", arg))
        if isinstance(arg, float):
            return ("constant", ("flt", arg))
        assert isinstance(arg, Struct)
        if arg.indicator == (".", 2):
            return ("list", None)
        return ("structure",
                ("fun", self.ctx.intern(arg.name, arg.arity)))


class _ClauseState:
    """Per-clause register-allocation state."""

    def __init__(self, ctx: CompileContext, arity: int, goals: list,
                 perm_index: Dict[int, int], cut_slot: Optional[int],
                 temp_base: int):
        self.ctx = ctx
        self.arity = arity
        self.goals = goals
        self.perm_index = perm_index
        self.cut_slot = cut_slot
        self.temp_index: Dict[int, int] = {}
        self._next_temp = temp_base

    def var_register(self, var: Var) -> Tuple[tuple, bool]:
        """(register, is_first_occurrence) for *var*."""
        vid = id(var)
        if vid in self.perm_index:
            slot = self.perm_index[vid]
            first = vid not in self.temp_index
            self.temp_index.setdefault(vid, -1)  # mark seen
            return (("y", slot), first)
        if vid in self.temp_index:
            return (("x", self.temp_index[vid]), False)
        reg = self._next_temp
        self._next_temp += 1
        self.temp_index[vid] = reg
        return (("x", reg), True)

    def fresh_temp(self) -> tuple:
        reg = self._next_temp
        self._next_temp += 1
        return ("x", reg)

    def const(self, value: Term) -> tuple:
        if isinstance(value, Atom):
            return ("atom", self.ctx.intern(value.name, 0))
        if isinstance(value, int):
            return ("int", value)
        if isinstance(value, float):
            return ("flt", value)
        raise TypeError_("constant", value)

    def functor(self, term: Struct) -> int:
        return self.ctx.intern(term.name, term.arity)


def compile_clause(clause: Term, context: CompileContext) -> CompiledClause:
    """Convenience wrapper: compile one clause in *context*."""
    return ClauseCompiler(context).compile_clause(clause)


def compile_procedure(clauses: List[Term], context: CompileContext,
                      index: bool = True) -> List[tuple]:
    """Compile a whole procedure: clause code + choice instructions +
    first-argument indexing (see :mod:`repro.wam.indexing`)."""
    from .indexing import build_procedure_code  # cycle-free late import

    compiled = [compile_clause(c, context) for c in clauses]
    return build_procedure_code(compiled, index=index)
