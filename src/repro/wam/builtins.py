"""Built-in predicates, invoked via the ``escape`` instruction.

Each built-in is ``fn(machine, arg_cells) -> result`` where the result is

* ``True`` / ``False`` — deterministic success/failure;
* ``"dispatched"``      — the built-in transferred control (``call/N``);
* a generator           — a non-deterministic built-in; the machine parks
  it in a generator choice point and pulls one solution per backtrack.

Arithmetic, term inspection, comparison, atom manipulation, findall and
friends, dynamic clause management and output all live here.  The module
registers every indicator with the compiler so goals are routed through
``escape`` rather than ``call``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..errors import (
    EvaluationError,
    InstantiationError,
    PermissionError_,
    PrologError,
    TypeError_,
)
from ..lang.writer import term_to_text
from ..terms import Atom, Struct, Term, compare_terms
from .compiler import register_builtin_indicator, split_clause

BUILTINS: Dict[Tuple[str, int], Callable] = {}


def builtin(name: str, arity: int):
    def wrap(fn):
        BUILTINS[(name, arity)] = fn
        register_builtin_indicator(name, arity)
        return fn
    return wrap


# ====================================================================
# helpers
# ====================================================================

def _type_name(m, cell) -> str:
    tag = m.deref_cell(cell)[0]
    return {
        "REF": "var", "CON": "atom", "INT": "integer", "FLT": "float",
        "LIS": "compound", "STR": "compound",
    }[tag]


def _undo(m, trail_mark: int) -> None:
    m._unwind_trail(trail_mark)


def _unify_or_undo(m, a, b) -> bool:
    mark = len(m.trail)
    if m.unify(a, b):
        return True
    _undo(m, mark)
    return False


def _cells_to_list(m, cell) -> List:
    """Proper-list cell → list of element cells; raises on bad lists."""
    out = []
    cell = m.deref_cell(cell)
    while True:
        if cell[0] == "CON" and cell[1] == m._nil_id:
            return out
        if cell[0] != "LIS":
            raise TypeError_("list", m.extract(cell))
        a = cell[1]
        out.append(m.heap[a])
        cell = m.deref_cell(m.heap[a + 1])


def _list_to_cells(m, items: List) -> tuple:
    """Build a heap list from element cells."""
    tail = ("CON", m._nil_id)
    for item in reversed(items):
        a = len(m.heap)
        m.heap.append(item)
        m.heap.append(tail)
        tail = ("LIS", a)
    return tail


def _build_term(m, term: Term) -> tuple:
    return m._build_cell(term, {})


# ====================================================================
# arithmetic
# ====================================================================

def _int_like(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


def eval_arith(m, cell):
    """Evaluate an arithmetic expression cell to a Python int/float."""
    cell = m.deref_cell(cell)
    tag = cell[0]
    if tag == "INT" or tag == "FLT":
        return cell[1]
    if tag == "REF":
        raise InstantiationError("arithmetic: unbound variable")
    if tag == "CON":
        name = m.dictionary.name(cell[1])
        const = _ARITH_CONSTANTS.get(name)
        if const is None:
            raise TypeError_("evaluable", f"{name}/0")
        return const
    if tag == "STR":
        a = cell[1]
        fid = m.heap[a][1]
        name, arity = m.dictionary.functor(fid)
        fn = _ARITH_FUNCTIONS.get((name, arity))
        if fn is None:
            raise TypeError_("evaluable", f"{name}/{arity}")
        args = [eval_arith(m, m.heap[a + k]) for k in range(1, arity + 1)]
        return fn(*args)
    raise TypeError_("evaluable", m.extract(cell))


_ARITH_CONSTANTS = {
    "pi": math.pi,
    "e": math.e,
    "inf": math.inf,
    "infinite": math.inf,
    "nan": math.nan,
    "epsilon": 2.220446049250313e-16,
    "max_tagged_integer": (1 << 60) - 1,
    "random": 0.42,  # deterministic by design: see DESIGN.md
}


def _div(a, b):
    if b == 0:
        raise EvaluationError("zero_divisor")
    if _int_like(a) and _int_like(b):
        if a % b == 0:
            return a // b
        return a / b
    return a / b


def _intdiv(a, b):
    if not (_int_like(a) and _int_like(b)):
        raise TypeError_("integer", a if not _int_like(a) else b)
    if b == 0:
        raise EvaluationError("zero_divisor")
    q = a // b
    # ISO (//)/2 truncates toward zero.
    if q < 0 and q * b != a:
        q += 1
    return q


def _mod(a, b):
    if b == 0:
        raise EvaluationError("zero_divisor")
    return a % b


def _rem(a, b):
    if b == 0:
        raise EvaluationError("zero_divisor")
    return a - _intdiv(a, b) * b


def _power(a, b):
    if _int_like(a) and _int_like(b) and b >= 0:
        return a ** b
    return float(a) ** float(b)


_ARITH_FUNCTIONS = {
    ("+", 2): lambda a, b: a + b,
    ("-", 2): lambda a, b: a - b,
    ("*", 2): lambda a, b: a * b,
    ("/", 2): _div,
    ("//", 2): _intdiv,
    ("div", 2): lambda a, b: a // b if b else _div(a, b),
    ("mod", 2): _mod,
    ("rem", 2): _rem,
    ("+", 1): lambda a: a,
    ("-", 1): lambda a: -a,
    ("abs", 1): abs,
    ("sign", 1): lambda a: (a > 0) - (a < 0) if _int_like(a)
        else math.copysign(1.0, a) if a else 0.0,
    ("min", 2): min,
    ("max", 2): max,
    ("sqrt", 1): math.sqrt,
    ("sin", 1): math.sin,
    ("cos", 1): math.cos,
    ("tan", 1): math.tan,
    ("asin", 1): math.asin,
    ("acos", 1): math.acos,
    ("atan", 1): math.atan,
    ("atan2", 2): math.atan2,
    ("atan", 2): math.atan2,
    ("exp", 1): math.exp,
    ("log", 1): math.log,
    ("log", 2): lambda b, x: math.log(x) / math.log(b),
    ("**", 2): lambda a, b: float(a) ** float(b),
    ("^", 2): _power,
    ("float", 1): float,
    ("integer", 1): lambda a: int(round(a)),
    ("truncate", 1): lambda a: int(a),
    ("round", 1): lambda a: int(math.floor(a + 0.5)),
    ("ceiling", 1): lambda a: int(math.ceil(a)),
    ("floor", 1): lambda a: int(math.floor(a)),
    ("float_integer_part", 1): lambda a: float(int(a)),
    ("float_fractional_part", 1): lambda a: a - float(int(a)),
    (">>", 2): lambda a, b: a >> b,
    ("<<", 2): lambda a, b: a << b,
    ("/\\", 2): lambda a, b: a & b,
    ("\\/", 2): lambda a, b: a | b,
    ("xor", 2): lambda a, b: a ^ b,
    ("\\", 1): lambda a: ~a,
    ("gcd", 2): math.gcd,
    ("succ", 1): lambda a: a + 1,
    ("plus", 2): lambda a, b: a + b,
}


def _num_cell(value) -> tuple:
    if _int_like(value):
        return ("INT", value)
    return ("FLT", float(value))


@builtin("is", 2)
def bi_is(m, args):
    value = eval_arith(m, args[1])
    return m.unify(args[0], _num_cell(value))


def _arith_compare(op):
    def fn(m, args):
        a = eval_arith(m, args[0])
        b = eval_arith(m, args[1])
        return op(a, b)
    return fn


builtin("=:=", 2)(_arith_compare(lambda a, b: a == b))
builtin("=\\=", 2)(_arith_compare(lambda a, b: a != b))
builtin("<", 2)(_arith_compare(lambda a, b: a < b))
builtin(">", 2)(_arith_compare(lambda a, b: a > b))
builtin("=<", 2)(_arith_compare(lambda a, b: a <= b))
builtin(">=", 2)(_arith_compare(lambda a, b: a >= b))


@builtin("succ", 2)
def bi_succ(m, args):
    a = m.deref_cell(args[0])
    b = m.deref_cell(args[1])
    if a[0] == "INT":
        if a[1] < 0:
            raise TypeError_("not_less_than_zero", a[1])
        return m.unify(args[1], ("INT", a[1] + 1))
    if b[0] == "INT":
        if b[1] <= 0:
            return False
        return m.unify(args[0], ("INT", b[1] - 1))
    raise InstantiationError("succ/2")


@builtin("plus", 3)
def bi_plus(m, args):
    a, b, c = (m.deref_cell(x) for x in args)
    known = [x for x in (a, b, c) if x[0] == "INT"]
    if len(known) < 2:
        raise InstantiationError("plus/3")
    if a[0] == "INT" and b[0] == "INT":
        return m.unify(args[2], ("INT", a[1] + b[1]))
    if a[0] == "INT":
        return m.unify(args[1], ("INT", c[1] - a[1]))
    return m.unify(args[0], ("INT", c[1] - b[1]))


# ====================================================================
# unification & comparison
# ====================================================================

@builtin("=", 2)
def bi_unify(m, args):
    return _unify_or_undo(m, args[0], args[1])


@builtin("\\=", 2)
def bi_not_unify(m, args):
    mark = len(m.trail)
    ok = m.unify(args[0], args[1])
    _undo(m, mark)
    return not ok


def compare_cells(m, a, b) -> int:
    """Standard order of terms over heap cells."""
    a = m.deref_cell(a)
    b = m.deref_cell(b)
    ra = _order_rank(a)
    rb = _order_rank(b)
    if ra != rb:
        return -1 if ra < rb else 1
    ta = a[0]
    if ta == "REF" and b[0] == "REF":
        return (a[1] > b[1]) - (a[1] < b[1])
    if ra == 1:  # numbers
        av = a[1]
        bv = b[1]
        if av == bv:
            if a[0] == "FLT" and b[0] == "INT":
                return -1
            if a[0] == "INT" and b[0] == "FLT":
                return 1
            return 0
        return -1 if av < bv else 1
    if ta == "CON":
        na = m.dictionary.name(a[1])
        nb = m.dictionary.name(b[1])
        return (na > nb) - (na < nb)
    # compound: arity, then name, then args
    na, aa, argsa = _compound_parts(m, a)
    nb, ab, argsb = _compound_parts(m, b)
    if aa != ab:
        return -1 if aa < ab else 1
    if na != nb:
        return -1 if na < nb else 1
    for x, y in zip(argsa, argsb):
        c = compare_cells(m, x, y)
        if c:
            return c
    return 0


def _order_rank(cell) -> int:
    tag = cell[0]
    if tag == "REF":
        return 0
    if tag == "INT" or tag == "FLT":
        return 1
    if tag == "CON":
        return 2
    return 3


def _compound_parts(m, cell):
    if cell[0] == "LIS":
        a = cell[1]
        return ".", 2, [m.heap[a], m.heap[a + 1]]
    a = cell[1]
    fid = m.heap[a][1]
    name, arity = m.dictionary.functor(fid)
    return name, arity, [m.heap[a + k] for k in range(1, arity + 1)]


builtin("==", 2)(lambda m, a: compare_cells(m, a[0], a[1]) == 0)
builtin("\\==", 2)(lambda m, a: compare_cells(m, a[0], a[1]) != 0)
builtin("@<", 2)(lambda m, a: compare_cells(m, a[0], a[1]) < 0)
builtin("@>", 2)(lambda m, a: compare_cells(m, a[0], a[1]) > 0)
builtin("@=<", 2)(lambda m, a: compare_cells(m, a[0], a[1]) <= 0)
builtin("@>=", 2)(lambda m, a: compare_cells(m, a[0], a[1]) >= 0)


@builtin("compare", 3)
def bi_compare(m, args):
    c = compare_cells(m, args[1], args[2])
    name = "<" if c < 0 else (">" if c > 0 else "=")
    return m.unify(args[0], ("CON", m.dictionary.intern(name, 0)))


# ====================================================================
# type tests
# ====================================================================

def _tag_test(*tags):
    def fn(m, args):
        return m.deref_cell(args[0])[0] in tags
    return fn


builtin("var", 1)(_tag_test("REF"))
builtin("nonvar", 1)(lambda m, a: m.deref_cell(a[0])[0] != "REF")
builtin("atom", 1)(_tag_test("CON"))
builtin("number", 1)(_tag_test("INT", "FLT"))
builtin("integer", 1)(_tag_test("INT"))
builtin("float", 1)(_tag_test("FLT"))
builtin("atomic", 1)(_tag_test("CON", "INT", "FLT"))
builtin("compound", 1)(_tag_test("STR", "LIS"))
builtin("callable", 1)(_tag_test("CON", "STR", "LIS"))


@builtin("is_list", 1)
def bi_is_list(m, args):
    cell = m.deref_cell(args[0])
    while True:
        if cell[0] == "CON" and cell[1] == m._nil_id:
            return True
        if cell[0] != "LIS":
            return False
        cell = m.deref_cell(m.heap[cell[1] + 1])


@builtin("ground", 1)
def bi_ground(m, args):
    stack = [args[0]]
    while stack:
        cell = m.deref_cell(stack.pop())
        tag = cell[0]
        if tag == "REF":
            return False
        if tag == "LIS":
            a = cell[1]
            stack.append(m.heap[a])
            stack.append(m.heap[a + 1])
        elif tag == "STR":
            a = cell[1]
            arity = m.dictionary.arity(m.heap[a][1])
            for k in range(1, arity + 1):
                stack.append(m.heap[a + k])
    return True


# ====================================================================
# term construction & inspection
# ====================================================================

@builtin("functor", 3)
def bi_functor(m, args):
    cell = m.deref_cell(args[0])
    tag = cell[0]
    if tag != "REF":
        if tag == "CON":
            name_cell = cell
            arity = 0
        elif tag == "INT" or tag == "FLT":
            name_cell = cell
            arity = 0
        elif tag == "LIS":
            name_cell = ("CON", m.dictionary.intern(".", 0))
            arity = 2
        else:
            fid = m.heap[cell[1]][1]
            name, arity = m.dictionary.functor(fid)
            name_cell = ("CON", m.dictionary.intern(name, 0))
        return (m.unify(args[1], name_cell)
                and m.unify(args[2], ("INT", arity)))
    # Construction mode.
    name = m.deref_cell(args[1])
    arity = m.deref_cell(args[2])
    if name[0] == "REF" or arity[0] == "REF":
        raise InstantiationError("functor/3")
    if arity[0] != "INT":
        raise TypeError_("integer", m.extract(arity))
    n = arity[1]
    if n == 0:
        return m.unify(args[0], name)
    if name[0] != "CON":
        raise TypeError_("atom", m.extract(name))
    fname = m.dictionary.name(name[1])
    if fname == "." and n == 2:
        a = len(m.heap)
        m.heap.append(("REF", a))
        m.heap.append(("REF", a + 1))
        return m.unify(args[0], ("LIS", a))
    fid = m.dictionary.intern(fname, n)
    a = len(m.heap)
    m.heap.append(("FUN", fid))
    for k in range(n):
        m.heap.append(("REF", a + 1 + k))
    return m.unify(args[0], ("STR", a))


@builtin("arg", 3)
def bi_arg(m, args):
    n = m.deref_cell(args[0])
    cell = m.deref_cell(args[1])
    if n[0] == "REF":
        raise InstantiationError("arg/3")
    if n[0] != "INT":
        raise TypeError_("integer", m.extract(n))
    idx = n[1]
    if cell[0] == "LIS":
        if idx == 1:
            return m.unify(args[2], m.heap[cell[1]])
        if idx == 2:
            return m.unify(args[2], m.heap[cell[1] + 1])
        return False
    if cell[0] != "STR":
        raise TypeError_("compound", m.extract(cell))
    a = cell[1]
    arity = m.dictionary.arity(m.heap[a][1])
    if not 1 <= idx <= arity:
        return False
    return m.unify(args[2], m.heap[a + idx])


@builtin("=..", 2)
def bi_univ(m, args):
    cell = m.deref_cell(args[0])
    tag = cell[0]
    if tag != "REF":
        if tag in ("CON", "INT", "FLT"):
            items = [cell]
        else:
            name, arity, sub = _compound_parts(m, cell)
            items = [("CON", m.dictionary.intern(name, 0))] + sub
        return m.unify(args[1], _list_to_cells(m, items))
    items = _cells_to_list(m, args[1])
    if not items:
        raise PrologError("=../2: empty list")
    head = m.deref_cell(items[0])
    rest = items[1:]
    if not rest:
        return m.unify(args[0], head)
    if head[0] != "CON":
        raise TypeError_("atom", m.extract(head))
    name = m.dictionary.name(head[1])
    if name == "." and len(rest) == 2:
        a = len(m.heap)
        m.heap.append(rest[0])
        m.heap.append(rest[1])
        return m.unify(args[0], ("LIS", a))
    fid = m.dictionary.intern(name, len(rest))
    a = len(m.heap)
    m.heap.append(("FUN", fid))
    for item in rest:
        m.heap.append(item)
    return m.unify(args[0], ("STR", a))


@builtin("copy_term", 2)
def bi_copy_term(m, args):
    term = m.extract(args[0])  # fresh Vars, sharing preserved via memo
    return m.unify(args[1], _build_term(m, term))


@builtin("acyclic_term", 1)
def bi_acyclic_term(m, args):
    """Cyclic-data detection (paper §1: Educe* provides "facilities to
    help ... in the detection of cyclic data").  WAM unification omits
    the occurs check, so rational trees can arise; this test finds
    them without looping."""
    on_path: set = set()
    done: set = set()

    def walk(cell) -> bool:
        stack = [("enter", cell)]
        while stack:
            action, cur = stack.pop()
            cur = m.deref_cell(cur)
            tag = cur[0]
            if tag not in ("STR", "LIS"):
                continue
            addr = cur[1]
            if action == "leave":
                on_path.discard(addr)
                done.add(addr)
                continue
            if addr in done:
                continue
            if addr in on_path:
                return False  # back edge: cycle
            on_path.add(addr)
            stack.append(("leave", cur))
            if tag == "LIS":
                stack.append(("enter", m.heap[addr]))
                stack.append(("enter", m.heap[addr + 1]))
            else:
                arity = m.dictionary.arity(m.heap[addr][1])
                for k in range(1, arity + 1):
                    stack.append(("enter", m.heap[addr + k]))
        return True

    return walk(args[0])


@builtin("cyclic_term", 1)
def bi_cyclic_term(m, args):
    return not bi_acyclic_term(m, args)


@builtin("unify_with_occurs_check", 2)
def bi_unify_occurs(m, args):
    """Sound unification: fails where plain unification would create a
    cyclic term."""
    mark = len(m.trail)
    if not m.unify(args[0], args[1]):
        _undo(m, mark)
        return False
    if bi_acyclic_term(m, [args[0]]):
        return True
    _undo(m, mark)
    return False


# ====================================================================
# atoms & strings
# ====================================================================

def _atom_name(m, cell) -> str:
    cell = m.deref_cell(cell)
    if cell[0] == "CON":
        return m.dictionary.name(cell[1])
    if cell[0] == "INT" or cell[0] == "FLT":
        return term_to_text(cell[1])
    raise TypeError_("atom", m.extract(cell))


@builtin("atom_codes", 2)
def bi_atom_codes(m, args):
    cell = m.deref_cell(args[0])
    if cell[0] != "REF":
        text = _atom_name(m, cell)
        codes = [("INT", ord(c)) for c in text]
        return m.unify(args[1], _list_to_cells(m, codes))
    items = _cells_to_list(m, args[1])
    chars = []
    for item in items:
        c = m.deref_cell(item)
        if c[0] != "INT":
            raise TypeError_("character_code", m.extract(c))
        chars.append(chr(c[1]))
    name = "".join(chars)
    return m.unify(args[0], ("CON", m.dictionary.intern(name, 0)))


@builtin("atom_chars", 2)
def bi_atom_chars(m, args):
    cell = m.deref_cell(args[0])
    if cell[0] != "REF":
        text = _atom_name(m, cell)
        chars = [("CON", m.dictionary.intern(c, 0)) for c in text]
        return m.unify(args[1], _list_to_cells(m, chars))
    items = _cells_to_list(m, args[1])
    chars = []
    for item in items:
        c = m.deref_cell(item)
        if c[0] != "CON":
            raise TypeError_("character", m.extract(c))
        chars.append(m.dictionary.name(c[1]))
    return m.unify(args[0], ("CON", m.dictionary.intern("".join(chars), 0)))


@builtin("char_code", 2)
def bi_char_code(m, args):
    a = m.deref_cell(args[0])
    if a[0] == "CON":
        name = m.dictionary.name(a[1])
        if len(name) != 1:
            raise TypeError_("character", name)
        return m.unify(args[1], ("INT", ord(name)))
    b = m.deref_cell(args[1])
    if b[0] != "INT":
        raise InstantiationError("char_code/2")
    return m.unify(args[0], ("CON", m.dictionary.intern(chr(b[1]), 0)))


@builtin("atom_length", 2)
def bi_atom_length(m, args):
    return m.unify(args[1], ("INT", len(_atom_name(m, args[0]))))


@builtin("atom_concat", 3)
def bi_atom_concat(m, args):
    a = m.deref_cell(args[0])
    b = m.deref_cell(args[1])
    if a[0] != "REF" and b[0] != "REF":
        joined = _atom_name(m, a) + _atom_name(m, b)
        return m.unify(args[2], ("CON", m.dictionary.intern(joined, 0)))
    whole = _atom_name(m, args[2])

    def splits():
        for i in range(len(whole) + 1):
            mark = len(m.trail)
            left = ("CON", m.dictionary.intern(whole[:i], 0))
            right = ("CON", m.dictionary.intern(whole[i:], 0))
            if m.unify(args[0], left) and m.unify(args[1], right):
                yield True
                _undo(m, mark)
            else:
                _undo(m, mark)
    return splits()


@builtin("number_codes", 2)
def bi_number_codes(m, args):
    cell = m.deref_cell(args[0])
    if cell[0] in ("INT", "FLT"):
        text = term_to_text(cell[1])
        return m.unify(
            args[1], _list_to_cells(m, [("INT", ord(c)) for c in text]))
    items = _cells_to_list(m, args[1])
    text = "".join(chr(m.deref_cell(i)[1]) for i in items)
    try:
        value = int(text)
    except ValueError:
        try:
            value = float(text)
        except ValueError:
            raise PrologError(f"number_codes/2: bad number {text!r}")
    return m.unify(args[0], _num_cell(value))


@builtin("atom_number", 2)
def bi_atom_number(m, args):
    cell = m.deref_cell(args[0])
    if cell[0] == "CON":
        text = m.dictionary.name(cell[1])
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                return False
        return m.unify(args[1], _num_cell(value))
    num = m.deref_cell(args[1])
    if num[0] not in ("INT", "FLT"):
        raise InstantiationError("atom_number/2")
    name = term_to_text(num[1])
    return m.unify(args[0], ("CON", m.dictionary.intern(name, 0)))


@builtin("term_to_atom", 2)
def bi_term_to_atom(m, args):
    cell = m.deref_cell(args[0])
    if cell[0] != "REF":
        text = term_to_text(m.extract(cell))
        return m.unify(args[1], ("CON", m.dictionary.intern(text, 0)))
    text = _atom_name(m, args[1])
    term = m.reader.read_term(text)
    return m.unify(args[0], _build_term(m, term))


# ====================================================================
# lists
# ====================================================================

@builtin("length", 2)
def bi_length(m, args):
    cell = m.deref_cell(args[0])
    n_cell = m.deref_cell(args[1])
    # Walk as far as the list is bound.
    count = 0
    cursor = cell
    while cursor[0] == "LIS":
        count += 1
        cursor = m.deref_cell(m.heap[cursor[1] + 1])
    if cursor[0] == "CON" and cursor[1] == m._nil_id:
        return m.unify(args[1], ("INT", count))
    if cursor[0] != "REF":
        raise TypeError_("list", m.extract(cell))
    if n_cell[0] == "INT":
        want = n_cell[1] - count
        if want < 0:
            return False
        items = []
        for _ in range(want):
            a = len(m.heap)
            m.heap.append(("REF", a))
            items.append(("REF", a))
        return m.unify(cursor, _list_to_cells(m, items))

    def lengths():
        k = 0
        while True:
            mark = len(m.trail)
            items = []
            for _ in range(k):
                a = len(m.heap)
                m.heap.append(("REF", a))
                items.append(("REF", a))
            ok = (m.unify(cursor, _list_to_cells(m, items))
                  and m.unify(args[1], ("INT", count + k)))
            if ok:
                yield True
            _undo(m, mark)
            k += 1
            if k > 10_000:  # safety net against runaway enumeration
                return
    return lengths()


@builtin("between", 3)
def bi_between(m, args):
    low = m.deref_cell(args[0])
    high = m.deref_cell(args[1])
    x = m.deref_cell(args[2])
    if low[0] != "INT" or high[0] != "INT":
        raise InstantiationError("between/3")
    if x[0] == "INT":
        return low[1] <= x[1] <= high[1]

    def values():
        for v in range(low[1], high[1] + 1):
            mark = len(m.trail)
            if m.unify(args[2], ("INT", v)):
                yield True
            _undo(m, mark)
    return values()


@builtin("msort", 2)
def bi_msort(m, args):
    items = [m.extract(c) for c in _cells_to_list(m, args[0])]
    items.sort(key=_StandardOrderKey)
    cells = [_build_term(m, t) for t in items]
    return m.unify(args[1], _list_to_cells(m, cells))


@builtin("sort", 2)
def bi_sort(m, args):
    items = [m.extract(c) for c in _cells_to_list(m, args[0])]
    items.sort(key=_StandardOrderKey)
    unique = []
    for t in items:
        if not unique or compare_terms(unique[-1], t) != 0:
            unique.append(t)
    cells = [_build_term(m, t) for t in unique]
    return m.unify(args[1], _list_to_cells(m, cells))


@builtin("keysort", 2)
def bi_keysort(m, args):
    items = [m.extract(c) for c in _cells_to_list(m, args[0])]
    for t in items:
        if not (isinstance(t, Struct) and t.indicator == ("-", 2)):
            raise TypeError_("pair", t)
    items.sort(key=lambda p: _StandardOrderKey(p.args[0]))
    cells = [_build_term(m, t) for t in items]
    return m.unify(args[1], _list_to_cells(m, cells))


class _StandardOrderKey:
    """functools.cmp_to_key equivalent over compare_terms."""

    __slots__ = ("term",)

    def __init__(self, term):
        self.term = term

    def __lt__(self, other):
        return compare_terms(self.term, other.term) < 0

    def __eq__(self, other):
        return compare_terms(self.term, other.term) == 0


# ====================================================================
# all-solutions predicates
# ====================================================================

def _strip_carets(m, goal_cell):
    """Remove ``Var^Goal`` wrappers (simplified bagof/setof)."""
    cell = m.deref_cell(goal_cell)
    while cell[0] == "STR":
        a = cell[1]
        fid = m.heap[a][1]
        if m.dictionary.functor(fid) != ("^", 2):
            break
        cell = m.deref_cell(m.heap[a + 2])
    return cell


@builtin("findall", 3)
def bi_findall(m, args):
    template, goal, out = args
    solutions: List[Term] = []
    for _ in m._solve_cell(goal):
        solutions.append(m.extract(template))
    cells = [_build_term(m, t) for t in solutions]
    return m.unify(out, _list_to_cells(m, cells))


@builtin("forall", 2)
def bi_forall(m, args):
    cond, action = args
    for _ in m._solve_cell(cond):
        ok = False
        for _ in m._solve_cell(action):
            ok = True
            break
        if not ok:
            return False
    return True


@builtin("aggregate_all", 3)
def bi_aggregate_all(m, args):
    spec = m.deref_cell(args[0])
    if spec[0] == "CON" and m.dictionary.name(spec[1]) == "count":
        count = sum(1 for _ in m._solve_cell(args[1]))
        return m.unify(args[2], ("INT", count))
    if spec[0] == "STR":
        a = spec[1]
        name, arity = m.dictionary.functor(m.heap[a][1])
        if arity == 1 and name in ("count", "sum", "max", "min", "bag"):
            template = m.heap[a + 1]
            values = []
            for _ in m._solve_cell(args[1]):
                values.append(m.extract(template))
            if name == "count":
                return m.unify(args[2], ("INT", len(values)))
            if name == "bag":
                cells = [_build_term(m, t) for t in values]
                return m.unify(args[2], _list_to_cells(m, cells))
            numbers = [v for v in values if isinstance(v, (int, float))]
            if len(numbers) != len(values):
                raise TypeError_("number", "aggregate_all template")
            if not numbers and name != "sum":
                return False
            if name == "sum":
                return m.unify(args[2], _num_cell(sum(numbers)))
            if name == "max":
                return m.unify(args[2], _num_cell(max(numbers)))
            return m.unify(args[2], _num_cell(min(numbers)))
    raise TypeError_("aggregate_spec", m.extract(spec))


@builtin("bagof", 3)
def bi_bagof(m, args):
    goal = _strip_carets(m, args[1])
    solutions: List[Term] = []
    for _ in m._solve_cell(goal):
        solutions.append(m.extract(args[0]))
    if not solutions:
        return False
    cells = [_build_term(m, t) for t in solutions]
    return m.unify(args[2], _list_to_cells(m, cells))


@builtin("setof", 3)
def bi_setof(m, args):
    goal = _strip_carets(m, args[1])
    solutions: List[Term] = []
    for _ in m._solve_cell(goal):
        solutions.append(m.extract(args[0]))
    if not solutions:
        return False
    solutions.sort(key=_StandardOrderKey)
    unique = []
    for t in solutions:
        if not unique or compare_terms(unique[-1], t) != 0:
            unique.append(t)
    cells = [_build_term(m, t) for t in unique]
    return m.unify(args[2], _list_to_cells(m, cells))


# ====================================================================
# call/N
# ====================================================================

def _make_call(extra: int):
    def bi_call_n(m, args):
        goal = m.deref_cell(args[0])
        if extra:
            goal = _extend_goal(m, goal, args[1:1 + extra])
        # Continuation = the instruction following the escape.
        m.cp_code, m.cp_pc = m.code, m.pc
        status = m._metacall(goal)
        if status == "fail":
            return False
        return "dispatched"
    return bi_call_n


def _extend_goal(m, goal, extra_cells):
    if goal[0] == "CON":
        name = m.dictionary.name(goal[1])
        base_args: List = []
    elif goal[0] == "STR":
        a = goal[1]
        fid = m.heap[a][1]
        name, arity = m.dictionary.functor(fid)
        base_args = [m.heap[a + k] for k in range(1, arity + 1)]
    else:
        raise TypeError_("callable", m.extract(goal))
    all_args = base_args + list(extra_cells)
    fid = m.dictionary.intern(name, len(all_args))
    a = len(m.heap)
    m.heap.append(("FUN", fid))
    for c in all_args:
        m.heap.append(c)
    return ("STR", a)


for _n in range(1, 8):
    builtin("call", _n)(_make_call(_n - 1))


@builtin("ignore", 1)
def bi_ignore(m, args):
    m.solve_goal_once(args[0])
    return True


@builtin("once", 1)
def bi_once(m, args):
    return m.solve_goal_once(args[0])


# ====================================================================
# dynamic clauses
# ====================================================================

def _clause_indicator(m, clause: Term) -> Tuple[str, int]:
    head, _ = split_clause(clause)
    if isinstance(head, Struct):
        return (head.name, head.arity)
    return (head.name, 0)


def _dynamic_proc(m, name: str, arity: int, create: bool = True):
    proc = m.procedure(name, arity)
    if proc is None:
        if not create:
            return None
        return m.define_procedure(name, arity, [], kind="dynamic")
    if proc.kind == "static":
        raise PermissionError_(
            f"modify static procedure {name}/{arity}")
    return proc


def _do_assert(m, args, front: bool) -> bool:
    clause = m.extract(args[0])
    name, arity = _clause_indicator(m, clause)
    proc = _dynamic_proc(m, name, arity)
    if front:
        # Keep the per-clause code cache aligned: compile the new clause
        # now so the cached suffix invariant holds (incremental, §3.1).
        proc.clauses.insert(0, clause)
        proc.compiled.insert(0, m.compiler.compile_clause(clause))
        m.compile_count += 1
    else:
        proc.clauses.append(clause)
    proc.dirty = True
    return True


builtin("assert", 1)(lambda m, a: _do_assert(m, a, front=False))
builtin("assertz", 1)(lambda m, a: _do_assert(m, a, front=False))
builtin("asserta", 1)(lambda m, a: _do_assert(m, a, front=True))


@builtin("retract", 1)
def bi_retract(m, args):
    pattern = m.deref_cell(args[0])
    # Normalise the pattern into head/body cells (fact == body `true`).
    colon = m.dictionary.lookup(":-", 2)
    if (pattern[0] == "STR"
            and m.heap[pattern[1]][1] == colon):
        head_cell = m.heap[pattern[1] + 1]
        body_cell = m.heap[pattern[1] + 2]
    else:
        head_cell = pattern
        body_cell = ("CON", m.dictionary.intern("true", 0))
    surface_head = m.extract(head_cell)
    if isinstance(surface_head, Struct):
        name, arity = surface_head.name, surface_head.arity
    elif isinstance(surface_head, Atom):
        name, arity = surface_head.name, 0
    else:
        raise InstantiationError("retract/1")
    proc = _dynamic_proc(m, name, arity, create=False)
    if proc is None:
        return False
    for i, stored in enumerate(proc.clauses):
        mark = len(m.trail)
        built = _build_term(m, _normal_clause(stored))
        a = built[1]
        if (m.unify(head_cell, m.heap[a + 1])
                and m.unify(body_cell, m.heap[a + 2])):
            del proc.clauses[i]
            if i < len(proc.compiled):
                del proc.compiled[i]
            proc.dirty = True
            return True
        _undo(m, mark)
    return False


def _normal_clause(clause: Term) -> Term:
    head, body = split_clause(clause)
    if not body:
        return Struct(":-", (head, Atom("true")))
    goal = body[0]
    for g in body[1:]:
        goal = Struct(",", (goal, g))
    return Struct(":-", (head, goal))


@builtin("retractall", 1)
def bi_retractall(m, args):
    head_cell = m.deref_cell(args[0])
    head = m.extract(head_cell)
    if isinstance(head, Struct):
        name, arity = head.name, head.arity
    elif isinstance(head, Atom):
        name, arity = head.name, 0
    else:
        raise TypeError_("callable", head)
    proc = _dynamic_proc(m, name, arity)
    kept = []
    for stored in proc.clauses:
        mark = len(m.trail)
        shead, _ = split_clause(stored)
        if not m.unify(_build_term(m, shead), _build_term(m, head)):
            kept.append(stored)
        _undo(m, mark)
    proc.clauses = kept
    proc.compiled = []  # cache no longer aligned: full (lazy) recompile
    proc.dirty = True
    return True


@builtin("abolish", 1)
def bi_abolish(m, args):
    spec = m.extract(args[0])
    if not (isinstance(spec, Struct) and spec.indicator == ("/", 2)):
        raise TypeError_("predicate_indicator", spec)
    name = spec.args[0]
    arity = spec.args[1]
    if not isinstance(name, Atom) or not isinstance(arity, int):
        raise TypeError_("predicate_indicator", spec)
    pid = m.dictionary.lookup(name.name, arity)
    if pid is not None:
        m.procedures.pop(pid, None)
    return True


@builtin("clause", 2)
def bi_clause(m, args):
    head_cell = m.deref_cell(args[0])
    head = m.extract(head_cell)
    if isinstance(head, Struct):
        name, arity = head.name, head.arity
    elif isinstance(head, Atom):
        name, arity = head.name, 0
    else:
        raise InstantiationError("clause/2")
    proc = m.procedure(name, arity)
    if proc is None or not proc.clauses:
        return False
    snapshot = list(proc.clauses)

    def matches():
        for stored in snapshot:
            mark = len(m.trail)
            normal = _normal_clause(stored)
            built = _build_term(m, normal)
            a = m.deref_cell(built)[1]
            shead = m.heap[a + 1]
            sbody = m.heap[a + 2]
            if m.unify(args[0], shead) and m.unify(args[1], sbody):
                yield True
            _undo(m, mark)
    return matches()


@builtin("dynamic", 1)
def bi_dynamic(m, args):
    spec = m.extract(args[0])
    for item in _indicator_list(spec):
        name, arity = item
        if m.procedure(name, arity) is None:
            m.define_procedure(name, arity, [], kind="dynamic")
    return True


def _indicator_list(spec: Term) -> List[Tuple[str, int]]:
    if isinstance(spec, Struct) and spec.indicator == (",", 2):
        return _indicator_list(spec.args[0]) + _indicator_list(spec.args[1])
    if isinstance(spec, Struct) and spec.indicator == ("/", 2):
        name, arity = spec.args
        if isinstance(name, Atom) and isinstance(arity, int):
            return [(name.name, arity)]
    raise TypeError_("predicate_indicator", spec)


# ====================================================================
# output & misc
# ====================================================================

@builtin("write", 1)
def bi_write(m, args):
    m.output.append(term_to_text(m.extract(args[0]), quoted=False))
    return True


@builtin("print", 1)
def bi_print(m, args):
    return bi_write(m, args)


@builtin("writeq", 1)
def bi_writeq(m, args):
    m.output.append(term_to_text(m.extract(args[0]), quoted=True))
    return True


@builtin("write_canonical", 1)
def bi_write_canonical(m, args):
    return bi_writeq(m, args)


@builtin("writeln", 1)
def bi_writeln(m, args):
    bi_write(m, args)
    m.output.append("\n")
    return True


@builtin("nl", 0)
def bi_nl(m, args):
    m.output.append("\n")
    return True


@builtin("tab", 1)
def bi_tab(m, args):
    n = eval_arith(m, args[0])
    m.output.append(" " * int(n))
    return True


@builtin("statistics", 2)
def bi_statistics(m, args):
    key_cell = m.deref_cell(args[0])
    if key_cell[0] != "CON":
        raise InstantiationError("statistics/2")
    key = m.dictionary.name(key_cell[1])
    counters = m.counters()
    if key == "inferences":
        return m.unify(args[1], ("INT", counters["calls"]))
    if key == "instructions":
        return m.unify(args[1], ("INT", counters["instr_count"]))
    if key in ("runtime", "cputime"):
        value = counters["instr_count"]
        pair = _list_to_cells(m, [("INT", value), ("INT", value)])
        return m.unify(args[1], pair)
    raise TypeError_("statistics_key", key)


@builtin("listing", 1)
def bi_listing(m, args):
    """Write a procedure's clauses (dynamic) or its disassembly (static)
    to the output stream."""
    spec = m.extract(args[0])
    if isinstance(spec, Struct) and spec.indicator == ("/", 2):
        name, arity = spec.args[0].name, spec.args[1]
    elif isinstance(spec, Atom):
        name, arity = spec.name, None
    else:
        raise TypeError_("predicate_indicator", spec)
    from ..lang.writer import format_clause
    shown = False
    for proc in list(m.procedures.values()):
        if proc.name != name or (arity is not None
                                 and proc.arity != arity):
            continue
        shown = True
        if proc.clauses:
            for clause in proc.clauses:
                m.output.append(format_clause(clause) + "\n")
        elif proc.code is not None:
            from .debugger import disassemble
            m.output.append(disassemble(m, proc.name, proc.arity) + "\n")
    return shown


@builtin("halt", 0)
def bi_halt(m, args):
    raise PrologError("halt/0 executed")


@builtin("true", 0)
def bi_true(m, args):
    return True


@builtin("fail", 0)
def bi_fail(m, args):
    return False


@builtin("false", 0)
def bi_false(m, args):
    return False
