"""Debugging aids: symbolic disassembly, tracing, spypoints.

The paper's acknowledgements credit Michael Dahmen "for such a powerful
debugger"; this module is the reproduction's equivalent:

* :func:`disassemble` — procedure listing with dictionary identifiers
  resolved back to functor names (readable WAM code);
* :class:`Tracer` — per-instruction trace with optional spypoints on
  predicate indicators, capturing call/instruction streams;
* :func:`instruction_profile` — opcode histogram for a goal, the raw
  material behind the paper's instruction-mix arguments (§2.1, §3.2.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ExistenceError
from . import instructions as I


def _fmt_operand(machine, op: str, pos: int, operand) -> str:
    d = machine.dictionary
    if isinstance(operand, tuple) and len(operand) == 2:
        kind = operand[0]
        if kind in ("x", "y"):
            return f"{kind.upper()}{operand[1]}"
        if kind == "atom":
            try:
                return f"'{d.name(operand[1])}'"
            except Exception:
                return repr(operand)
        if kind in ("int", "flt"):
            return str(operand[1])
    if op in (I.GET_STRUCTURE, I.PUT_STRUCTURE) and pos == 1:
        try:
            name, arity = d.functor(operand)
            return f"{name}/{arity}"
        except Exception:
            return repr(operand)
    if op in (I.CALL, I.EXECUTE) and pos == 1:
        try:
            name, arity = d.functor(operand)
            return f"{name}/{arity}"
        except Exception:
            return repr(operand)
    if isinstance(operand, dict):
        parts = []
        for key, target in operand.items():
            if key[0] == "atom":
                try:
                    parts.append(f"'{d.name(key[1])}'->{target}")
                    continue
                except Exception:
                    pass
            if key[0] == "fun":
                try:
                    name, arity = d.functor(key[1])
                    parts.append(f"{name}/{arity}->{target}")
                    continue
                except Exception:
                    pass
            parts.append(f"{key[1]}->{target}")
        return "{" + ", ".join(parts) + "}"
    if isinstance(operand, tuple):
        # fused-superinstruction item lists nest registers/constants
        return "[" + ", ".join(_fmt_operand(machine, op, pos, element)
                               for element in operand) + "]"
    return repr(operand)


def format_instruction(machine, instr: tuple) -> str:
    op = instr[0]
    operands = ", ".join(
        _fmt_operand(machine, op, i, operand)
        for i, operand in enumerate(instr[1:], start=1))
    return f"{op} {operands}".rstrip()


def disassemble(machine, name: str, arity: int) -> str:
    """Symbolic listing of a compiled procedure."""
    proc = machine.procedure(name, arity)
    if proc is None:
        raise ExistenceError("procedure", f"{name}/{arity}")
    if proc.kind == "dynamic" and (proc.dirty or proc.code is None):
        proc.code = machine._compile_procedure(proc.clauses, proc.index)
        proc.dirty = False
    if proc.code is None:
        raise ExistenceError("compiled code", f"{name}/{arity}")
    lines = [f"% {name}/{arity} ({proc.kind})"]
    for offset, instr in enumerate(proc.code):
        lines.append(f"{offset:4d}  {format_instruction(machine, instr)}")
    return "\n".join(lines)


class Tracer:
    """Instruction/call tracer with spypoints.

    >>> tracer = Tracer(machine, spypoints=[("append", 3)])
    >>> with tracer:
    ...     machine.solve_once("append([1], [2], L)")
    >>> tracer.calls
    [('append', 3), ...]
    """

    def __init__(self, machine, spypoints=None,
                 sink: Optional[Callable[[str], None]] = None,
                 max_events: int = 100_000):
        self.machine = machine
        self.spypoints = set(spypoints or [])
        self.sink = sink
        self.max_events = max_events
        self.events: List[str] = []
        self.calls: List[Tuple[str, int]] = []
        self.opcode_counts: Counter = Counter()

    # -------------------------------------------------------- context mgmt

    def __enter__(self) -> "Tracer":
        self._saved = self.machine.trace_hook
        self.machine.trace_hook = self._on_instruction
        return self

    def __exit__(self, *exc) -> None:
        self.machine.trace_hook = self._saved
        return None

    # ------------------------------------------------------------- the hook

    def _on_instruction(self, machine, instr) -> None:
        op = instr[0]
        self.opcode_counts[op] += 1
        if op in (I.CALL, I.EXECUTE):
            try:
                indicator = machine.dictionary.functor(instr[1])
            except Exception:
                indicator = ("?", -1)
            self.calls.append(indicator)
            if not self.spypoints or indicator in self.spypoints:
                self._emit(f"{op} {indicator[0]}/{indicator[1]}")
        elif not self.spypoints and len(self.events) < self.max_events:
            self._emit(format_instruction(machine, instr))

    def _emit(self, text: str) -> None:
        if len(self.events) < self.max_events:
            self.events.append(text)
        if self.sink is not None:
            self.sink(text)


def instruction_profile(machine, goal) -> Dict[str, int]:
    """Opcode histogram for solving *goal* once."""
    tracer = Tracer(machine, spypoints=[("$none", 0)])
    with tracer:
        machine.solve_once(goal)
    return dict(tracer.opcode_counts)
