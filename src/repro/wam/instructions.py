"""WAM instruction set.

Instructions are plain tuples ``(opcode, operand...)`` — the cheapest
dispatchable representation in Python.  Operands use these conventions:

* registers: ``('x', n)`` temporary / argument registers,
  ``('y', n)`` permanent (environment) slots;
* constants: ``('atom', dict_id)``, ``('int', v)``, ``('flt', v)`` —
  atoms are referenced by their *internal dictionary identifier*, never
  by name (paper §3.3.1);
* functors: the internal dictionary identifier of (name, arity);
* code labels: symbolic strings before assembly, integer offsets within
  the procedure's code block after assembly.

The set follows Warren's original machine [22] plus the indexing
instructions, cut support and an ``escape`` instruction for built-ins.
"""

from __future__ import annotations

from typing import List, Tuple

Instr = Tuple  # (opcode, *operands)

# --- get (head argument unification) ---------------------------------------
GET_VARIABLE = "get_variable"          # (reg, ai)
GET_VALUE = "get_value"                # (reg, ai)
GET_CONSTANT = "get_constant"          # (const, ai)
GET_NIL = "get_nil"                    # (ai,)
GET_STRUCTURE = "get_structure"        # (fid, ai)
GET_LIST = "get_list"                  # (ai,)

# --- put (goal argument construction) ---------------------------------------
PUT_VARIABLE = "put_variable"          # (reg, ai)
PUT_VALUE = "put_value"                # (reg, ai)
PUT_UNSAFE_VALUE = "put_unsafe_value"  # (yreg, ai)
PUT_CONSTANT = "put_constant"          # (const, ai)
PUT_NIL = "put_nil"                    # (ai,)
PUT_STRUCTURE = "put_structure"        # (fid, ai)
PUT_LIST = "put_list"                  # (ai,)

# --- unify (structure arguments, read/write mode) ----------------------------
UNIFY_VARIABLE = "unify_variable"      # (reg,)
UNIFY_VALUE = "unify_value"            # (reg,)
UNIFY_LOCAL_VALUE = "unify_local_value"  # (reg,)
UNIFY_CONSTANT = "unify_constant"      # (const,)
UNIFY_NIL = "unify_nil"                # ()
UNIFY_VOID = "unify_void"              # (count,)

# --- control ----------------------------------------------------------------
ALLOCATE = "allocate"                  # (nperm,)
DEALLOCATE = "deallocate"              # ()
CALL = "call"                          # (pid, arity)
EXECUTE = "execute"                    # (pid, arity)
PROCEED = "proceed"                    # ()

# --- choice points ------------------------------------------------------------
TRY_ME_ELSE = "try_me_else"            # (label,)
RETRY_ME_ELSE = "retry_me_else"        # (label,)
TRUST_ME = "trust_me"                  # ()
TRY = "try"                            # (label,)
RETRY = "retry"                        # (label,)
TRUST = "trust"                        # (label,)

# --- indexing (§3.2.2) --------------------------------------------------------
SWITCH_ON_TERM = "switch_on_term"      # (lvar, lcon, llis, lstr)
SWITCH_ON_CONSTANT = "switch_on_constant"  # (table: {const_key: label}, default)
SWITCH_ON_STRUCTURE = "switch_on_structure"  # (table: {fid: label}, default)

# --- cut ----------------------------------------------------------------------
NECK_CUT = "neck_cut"                  # ()
GET_LEVEL = "get_level"                # (yreg,)
CUT = "cut"                            # (yreg,)

# --- built-ins & misc -----------------------------------------------------------
ESCAPE = "escape"                      # (builtin_name, arity)
FAIL_OP = "fail_op"                    # () unconditional failure
NOOP = "noop"                          # ()
HALT_SUCCESS = "halt_success"          # () sentinel: top-level goal solved
LABEL = "label"                        # (name,) pseudo-instruction, assembled away

# --- fused superinstructions (repro.wam.optimizer, docs/OPTIMIZER.md) --------
# Emitted only by the peephole pass; each executes the exact semantics of
# the run of plain instructions it replaces, in order, under one dispatch.
GET_CONSTANTS = "get_constants"        # (((const, ai), ...),)
UNIFY_CONSTANTS = "unify_constants"    # ((const, ...),)
GET_LIST_VV = "get_list_vv"            # (ai, reg, reg): get_list + 2 unify_variable
PUT_ARGS = "put_args"                  # ((('v', src, ai) | ('c', const, ai), ...),)

# --- determinism-driven dispatch (repro.wam.optimizer) -----------------------
# Guard in front of a try/retry/trust chain whose clauses all hold
# pairwise-distinct constants at argument *argpos*: a bound constant
# dispatches straight to its clause entry (no choice point), a bound
# non-constant fails, an unbound argument falls back to the full chain.
SWITCH_ON_ARG = "switch_on_arg"        # (argpos, {const_key: label}, lvar, lmiss)

_JUMP_OPS = {TRY_ME_ELSE, RETRY_ME_ELSE, TRY, RETRY, TRUST}


def format_instr(instr: Instr) -> str:
    """Human-readable rendering of one instruction."""
    op = instr[0]
    operands = ", ".join(_format_operand(x) for x in instr[1:])
    return f"{op} {operands}".rstrip()


def _format_operand(x: object) -> str:
    if isinstance(x, tuple) and len(x) == 2 and x[0] in ("x", "y"):
        return f"{x[0].upper()}{x[1]}"
    if isinstance(x, tuple) and len(x) == 2 and x[0] in ("atom", "int", "flt"):
        return f"{x[0]}:{x[1]}"
    if isinstance(x, tuple):
        # fused-instruction operand lists nest registers and constants
        return "[" + ", ".join(_format_operand(e) for e in x) + "]"
    if isinstance(x, dict):
        inner = ", ".join(f"{_format_operand(k)}->{v}"
                          if isinstance(k, tuple) else f"{k}->{v}"
                          for k, v in x.items())
        return "{" + inner + "}"
    return repr(x)


def format_code(code: List[Instr]) -> str:
    """Disassembly listing of a code block."""
    lines = []
    for i, instr in enumerate(code):
        lines.append(f"{i:4d}  {format_instr(instr)}")
    return "\n".join(lines)
