"""WAM code optimizer: peephole fusion + determinism-driven dispatch.

Two passes over procedure code, both proven safe before their output is
ever executed (docs/OPTIMIZER.md):

* **Peephole / superinstruction fusion** (level ``"peephole"`` and up)
  rewrites runs of adjacent instructions inside one clause's code into
  fused instructions executed natively by :mod:`repro.wam.machine`
  under a single dispatch — ``get_constants``, ``unify_constants``,
  ``get_list_vv`` and ``put_args``.  Each fused handler executes the
  exact semantics of the run it replaces, in order, so fusion is
  observationally equivalent by construction; what changes is the
  interpretation overhead (``instr_count``), the cost the paper's
  compiled-vs-interpreted argument hinges on (§2.1, §3.2.1).

* **Determinism-driven dispatch** (level ``"full"``) consults the same
  per-argument partition analysis as :mod:`repro.analysis.determinism`:
  when every clause of a try/retry/trust chain holds a pairwise-distinct
  constant at some argument position, at most one clause can match any
  bound value, so the chain is demoted behind a ``switch_on_arg`` guard
  — a bound call dispatches straight to its clause entry with **no
  choice point**, extending the paper's first-argument determinism
  transformation (§3.2.2) to every argument position and to unindexed
  chains.

Safety gate
-----------
Every optimized block must pass ``verify="full"`` (structural V rules +
the abstract interpreter, both extended with the fused opcodes) plus the
D301/D302 determinism analysis before it replaces the naive block.  Any
finding — or an armed forced reject, the FaultInjector-style test hook —
falls back to the unoptimized block and bumps ``wam_opt_rejects``;
unverified optimized code is never executed.

The ``optimize="off"|"peephole"|"full"`` knob threads through
:class:`~repro.wam.machine.Machine`, the EDB dynamic loader, the session
config and the REPL's ``:optimize`` command.  The suite-wide default is
set with :func:`set_default_level`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import VerifyError
from . import instructions as I
from .compiler import CompiledClause
from .indexing import build_procedure_code, build_procedure_layout

__all__ = ["OPT_LEVELS", "GuardPlan", "Optimizer",
           "build_optimized_block", "chain_guard", "default_level",
           "fuse_code", "mode_guard", "set_default_level"]

#: accepted optimization levels (docs/OPTIMIZER.md)
OPT_LEVELS = ("off", "peephole", "full")

#: process-wide default level for machines/sessions constructed with
#: ``optimize=None``; the test suite flips it to "full" in conftest.py
_DEFAULT_LEVEL = "off"


def set_default_level(level: str) -> None:
    """Set the process-wide default optimization level."""
    global _DEFAULT_LEVEL
    if level not in OPT_LEVELS:
        raise ValueError(
            f"optimize={level!r}: expected one of {OPT_LEVELS}")
    _DEFAULT_LEVEL = level


def default_level() -> str:
    return _DEFAULT_LEVEL


# =====================================================================
# Peephole / superinstruction fusion
# =====================================================================

_MIN_RUN = 2
_PUT_RUN_OPS = (I.PUT_VALUE, I.PUT_CONSTANT)


def fuse_code(code: Sequence[tuple]) -> Tuple[List[tuple], int]:
    """One peephole pass over a clause's (label-free, linear) code.

    Returns ``(fused_code, fusions)`` where *fusions* counts the fused
    instructions emitted.  The fusion table lives in docs/OPTIMIZER.md;
    every rule replaces an adjacent run with one fused instruction whose
    handler executes the component semantics in source order.
    """
    out: List[tuple] = []
    fusions = 0
    i, n = 0, len(code)
    while i < n:
        instr = code[i]
        op = instr[0]
        if op == I.GET_CONSTANT:
            j = i
            while j < n and code[j][0] == I.GET_CONSTANT:
                j += 1
            if j - i >= _MIN_RUN:
                out.append((I.GET_CONSTANTS, tuple(
                    (code[k][1], code[k][2]) for k in range(i, j))))
                fusions += 1
                i = j
                continue
        elif op == I.UNIFY_CONSTANT:
            j = i
            while j < n and code[j][0] == I.UNIFY_CONSTANT:
                j += 1
            if j - i >= _MIN_RUN:
                out.append((I.UNIFY_CONSTANTS,
                            tuple(code[k][1] for k in range(i, j))))
                fusions += 1
                i = j
                continue
        elif (op == I.GET_LIST and i + 2 < n
              and code[i + 1][0] == I.UNIFY_VARIABLE
              and code[i + 2][0] == I.UNIFY_VARIABLE):
            out.append((I.GET_LIST_VV, instr[1],
                        code[i + 1][1], code[i + 2][1]))
            fusions += 1
            i += 3
            continue
        elif op in _PUT_RUN_OPS:
            j = i
            while j < n and code[j][0] in _PUT_RUN_OPS:
                j += 1
            if j - i >= _MIN_RUN:
                out.append((I.PUT_ARGS, tuple(
                    ("v", code[k][1], code[k][2])
                    if code[k][0] == I.PUT_VALUE
                    else ("c", code[k][1], code[k][2])
                    for k in range(i, j))))
                fusions += 1
                i = j
                continue
        out.append(instr)
        i += 1
    return out, fusions


# =====================================================================
# Determinism-driven chain demotion
# =====================================================================

def chain_guard(clauses: Sequence[CompiledClause],
                positions: Sequence[int], min_arg: int
                ) -> Optional[Tuple[int, Dict[tuple, int]]]:
    """``(argpos, {const_key: clause position})`` when the chain over
    *positions* is provably deterministic on some argument ≥ *min_arg*:
    every clause holds a constant there and the constants are pairwise
    distinct, so a bound value selects at most one clause (and a bound
    list/structure selects none).  ``None`` when no such position
    exists or any clause lacks per-argument key metadata.
    """
    chain = [clauses[p] for p in positions]
    if len(chain) < 2:
        return None
    arity = chain[0].arity
    if any(c.arg_keys is None or len(c.arg_keys) != arity for c in chain):
        return None
    for k in range(min_arg, arity):
        keys = []
        for c in chain:
            kind, key = c.arg_keys[k]
            if kind not in ("constant", "nil") or key is None:
                keys = None
                break
            keys.append(key)
        if keys is not None and len(set(keys)) == len(keys):
            return k, {key: positions[i] for i, key in enumerate(keys)}
    return None


@dataclass(frozen=True)
class GuardPlan:
    """One ``switch_on_arg`` guard, generalized to sub-chains.

    ``table`` maps each constant key to the clause positions a call
    bound to that key must still try, in source order (the matching
    constants plus every clause holding a variable at ``argpos``);
    ``var_positions`` are the variable-at-``argpos`` clauses alone —
    the target for a bound value matching no key (and for bound lists/
    structures, which is why planning excludes procedures with list or
    structure keys at ``argpos``).  An unbound argument always takes
    the full sequential chain.  The plan is therefore observationally
    equivalent for *every* call pattern; inferred modes only decide
    where planning is worth attempting (docs/OPTIMIZER.md,
    "interprocedural guards").

    The legacy pairwise-distinct-constants guard is the special case
    of singleton targets and no variable clauses.
    """
    argpos: int
    table: Dict[tuple, Tuple[int, ...]]
    var_positions: Tuple[int, ...]
    mode_driven: bool


def mode_guard(clauses: Sequence[CompiledClause],
               positions: Sequence[int], min_arg: int,
               bound_positions: Sequence[int]
               ) -> Optional[GuardPlan]:
    """Plan a guard on an argument the whole-program analysis proved
    ground at every call site, where the local :func:`chain_guard`
    could not (duplicate constants, or variable-headed clauses mixed
    in).  Profitable only when at least two distinct keys exist and
    every dispatch target is a strict sub-chain."""
    chain = [clauses[p] for p in positions]
    if len(chain) < 2:
        return None
    arity = chain[0].arity
    if any(c.arg_keys is None or len(c.arg_keys) != arity for c in chain):
        return None
    for k in sorted(bound_positions):
        if k < min_arg or k >= arity:
            continue
        var_positions: List[int] = []
        by_key: Dict[tuple, List[int]] = {}
        ok = True
        for pos in positions:
            kind, key = clauses[pos].arg_keys[k]
            if kind == "var":
                var_positions.append(pos)
            elif kind in ("constant", "nil") and key is not None:
                by_key.setdefault(key, []).append(pos)
            else:
                ok = False  # list/structure key: lmiss would be wrong
                break
        if not ok or len(by_key) < 2:
            continue
        table = {
            key: tuple(sorted(matches + var_positions))
            for key, matches in by_key.items()
        }
        if max(len(t) for t in table.values()) >= len(positions):
            continue  # no dispatch target is any shorter than the chain
        return GuardPlan(argpos=k, table=table,
                         var_positions=tuple(var_positions),
                         mode_driven=True)
    return None


# =====================================================================
# The optimizer object
# =====================================================================

class Optimizer:
    """Level knob + statistics + the verify/fallback gate.

    One instance is shared per session between the machine and the
    dynamic loader so the ``wam_opt_*`` counters aggregate in one place
    (they surface through ``Machine.counters()`` into the metrics
    registry and the Prometheus exposition).
    """

    def __init__(self, level: Optional[str] = None):
        resolved = _DEFAULT_LEVEL if level is None else level
        if resolved not in OPT_LEVELS:
            raise ValueError(
                f"optimize={resolved!r}: expected one of {OPT_LEVELS}")
        self.level = resolved
        #: blocks built through the optimizing path (level != off)
        self.blocks = 0
        #: fused superinstructions emitted by the peephole pass
        self.fusions = 0
        #: try/retry/trust chains demoted behind a switch_on_arg guard
        self.chains_demoted = 0
        #: guards emitted only thanks to interprocedural mode facts
        self.mode_guards = 0
        #: optimized blocks rejected by the gate (fell back to naive code)
        self.rejects = 0
        #: whole-program analysis facts: indicator -> argument positions
        #: proven ground at every analysed call site (profitability map
        #: for :func:`mode_guard`; installed by the session)
        self.global_bound_args: Dict[Tuple[str, int],
                                     Tuple[int, ...]] = {}
        #: bumped on every install so block caches keyed on it refresh
        self.modes_epoch = 0
        #: (procedure, rule, offset) of the most recent gate rejection
        self.last_reject: Optional[tuple] = None
        #: flight recorder for ``wam_opt.reject`` events — the session
        #: wires its store's ring here so gate fallbacks show up in
        #: ``:events`` and slow-query captures (None = not wired)
        self.events = None
        self._armed_rejects = 0
        self._muted = 0

    # ------------------------------------------------------------ level

    @property
    def fuse_enabled(self) -> bool:
        return self.level in ("peephole", "full")

    @property
    def dispatch_enabled(self) -> bool:
        return self.level == "full"

    @property
    def enabled(self) -> bool:
        return self.level != "off"

    def set_level(self, level: str) -> None:
        if level not in OPT_LEVELS:
            raise ValueError(
                f"optimize={level!r}: expected one of {OPT_LEVELS}")
        self.level = level

    # ------------------------------------------------------- pass hooks

    def fuse_compiled(self, clause: CompiledClause) -> CompiledClause:
        """Peephole-fuse one clause's code; the clause object is never
        mutated (dynamic procedures keep their per-clause cache)."""
        code, fusions = fuse_code(clause.code)
        if not fusions:
            return clause
        if not self._muted:
            self.fusions += fusions
        return replace(clause, code=code)

    def guard_for_chain(self, clauses: Sequence[CompiledClause],
                        positions: Sequence[int], min_arg: int
                        ) -> Optional[Tuple[int, Dict[tuple, int]]]:
        guard = chain_guard(clauses, positions, min_arg)
        if guard is not None and not self._muted:
            self.chains_demoted += 1
        return guard

    def plan_guard(self, clauses: Sequence[CompiledClause],
                   positions: Sequence[int], min_arg: int
                   ) -> Optional[GuardPlan]:
        """The unified guard planner :mod:`repro.wam.indexing` emits
        from: the local pairwise-distinct-constants proof first, then
        the interprocedural :func:`mode_guard` when the whole-program
        analysis marked arguments of this predicate ground at every
        call site."""
        guard = self.guard_for_chain(clauses, positions, min_arg)
        if guard is not None:
            argpos, table = guard
            return GuardPlan(
                argpos=argpos,
                table={key: (pos,) for key, pos in table.items()},
                var_positions=(), mode_driven=False)
        if not self.global_bound_args:
            return None
        bound = self.global_bound_args.get(
            (clauses[0].head_name, clauses[0].arity))
        if not bound:
            return None
        plan = mode_guard(clauses, positions, min_arg, bound)
        if plan is not None and not self._muted:
            self.mode_guards += 1
        return plan

    def set_global_modes(self, bound_args: Dict[Tuple[str, int],
                                                Tuple[int, ...]]) -> None:
        """Install (or clear) the whole-program bound-argument map and
        bump ``modes_epoch`` so cached blocks rebuild against it."""
        self.global_bound_args = dict(bound_args)
        self.modes_epoch += 1

    @contextmanager
    def muted(self):
        """Suspend statistics while rebuilding for the D301 check, so
        the verification rebuild does not double-count the passes."""
        self._muted += 1
        try:
            yield
        finally:
            self._muted -= 1

    # ------------------------------------------------------------- gate

    def arm_reject(self, count: int = 1) -> None:
        """FaultInjector-style test hook: force the next *count* gated
        blocks to be rejected (and fall back to unoptimized code)."""
        self._armed_rejects += count

    def gate(self, clauses: Sequence[CompiledClause], layout,
             index: bool, dictionary, procedure: str) -> None:
        """Raise :class:`VerifyError` unless the optimized *layout* is
        provably safe: verify="full" clean and D301/D302 clean."""
        if self._armed_rejects > 0:
            self._armed_rejects -= 1
            raise VerifyError("F901", 0, "forced optimizer reject "
                              "(armed test fault)", procedure)
        from ..analysis.verifier import verify_code
        verify_code(layout.code, arity=clauses[0].arity,
                    dictionary=dictionary, level="full",
                    procedure=procedure)
        from ..analysis.determinism import analyze_clauses
        with self.muted():
            report = analyze_clauses(clauses, code=layout.code,
                                     index=index, optimizer=self)
        if report.findings:
            first = report.findings[0]
            raise VerifyError(first.rule, first.offset, first.message,
                              procedure)

    # --------------------------------------------------------- counters

    def counters(self) -> dict:
        return {
            "wam_opt_blocks": self.blocks,
            "wam_opt_fusions": self.fusions,
            "wam_opt_chains_demoted": self.chains_demoted,
            "wam_opt_mode_guards": self.mode_guards,
            "wam_opt_rejects": self.rejects,
        }

    def reset_counters(self) -> None:
        self.blocks = 0
        self.fusions = 0
        self.chains_demoted = 0
        self.mode_guards = 0
        self.rejects = 0


def build_optimized_block(clauses: Sequence[CompiledClause],
                          index: bool = True,
                          optimizer: Optional[Optimizer] = None,
                          dictionary=None,
                          procedure: str = "") -> list:
    """Build a procedure block, optimizing when an enabled *optimizer*
    is supplied.  The optimized block replaces the naive one **only**
    after passing the full verification gate; any finding falls back to
    the unoptimized block (counted in ``wam_opt_rejects``)."""
    clauses = list(clauses)
    if optimizer is None or not optimizer.enabled or not clauses:
        return build_procedure_code(clauses, index=index)
    optimizer.blocks += 1
    layout = build_procedure_layout(clauses, index=index,
                                    optimizer=optimizer)
    try:
        optimizer.gate(clauses, layout, index=index,
                       dictionary=dictionary, procedure=procedure)
    except VerifyError as exc:
        optimizer.rejects += 1
        optimizer.last_reject = (procedure, exc.rule, exc.offset)
        events = optimizer.events
        if events is not None and events.enabled:
            events.record("wam_opt.reject", procedure=procedure or "?",
                          rule=exc.rule, offset=exc.offset)
        return build_procedure_code(clauses, index=index)
    return layout.code
