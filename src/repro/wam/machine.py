"""The WAM emulator (paper §2.1, §3.2, §3.3).

A register/heap machine executing the instruction tuples produced by
:mod:`repro.wam.compiler`.  The heap is a list of tagged cells:

=========  =================================================
``REF a``  variable; unbound iff it points at its own address
``STR a``  pointer to a ``FUN`` cell followed by the arguments
``FUN f``  functor cell (*f* = internal dictionary identifier)
``CON c``  atom constant (*c* = internal dictionary identifier)
``INT n`` / ``FLT x``  immediate numbers
``LIS a``  list cell: head at *a*, tail at *a+1*
=========  =================================================

Counters
--------
The machine counts executed instructions, data references and — kept
separately — **choice-point references**, so the reproduction of the
Touati & Despain observation the paper cites in §3.2.1 ("an average of
52 % of data references are choice point references") is a first-class
output (benchmark E7).

Procedures
----------
Four kinds, reflecting the Educe* architecture:

* ``static``  — compiled main-memory code;
* ``dynamic`` — surface clauses, recompiled on demand (assert/retract);
* ``external``— a fetch callback; the EDB dynamic loader returns runnable
  code filtered by pre-unification (paper §3.1, §4);
* built-ins live in a separate registry and are invoked by ``escape``.

When a called procedure is unknown, the machine consults its
``unknown_handler`` — the "interpreter program that is trapped when no
predicate is found in main memory" of §3.2.1; the EDB session installs
its retrieval hook there.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..dictionary import SegmentedDictionary
from ..errors import (
    ExistenceError,
    InstantiationError,
    MachineError,
    PrologError,
    TypeError_,
)
from ..lang.reader import Reader
from ..obs.tracing import NULL_TRACER
from ..terms import NIL, Atom, Struct, Term, Var, deref
from . import instructions as I
from .compiler import (
    ClauseCompiler,
    CompileContext,
    is_builtin_indicator,
    split_clause,
)
from .optimizer import Optimizer, build_optimized_block

# Rough data-reference cost (register/heap/stack accesses) per opcode,
# excluding the choice-point traffic which is counted separately.
# Fused superinstructions carry 0 here; their handlers add the same
# per-component costs as the runs they replace, so ``data_refs`` stays
# comparable across optimization levels while ``instr_count`` drops.
_DATA_COST = {
    I.GET_VARIABLE: 2, I.GET_VALUE: 3, I.GET_CONSTANT: 2, I.GET_NIL: 2,
    I.GET_STRUCTURE: 3, I.GET_LIST: 3,
    I.PUT_VARIABLE: 3, I.PUT_VALUE: 2, I.PUT_UNSAFE_VALUE: 2,
    I.PUT_CONSTANT: 1, I.PUT_NIL: 1, I.PUT_STRUCTURE: 2, I.PUT_LIST: 2,
    I.UNIFY_VARIABLE: 2, I.UNIFY_VALUE: 3, I.UNIFY_LOCAL_VALUE: 3,
    I.UNIFY_CONSTANT: 2, I.UNIFY_NIL: 2, I.UNIFY_VOID: 1,
    I.ALLOCATE: 3, I.DEALLOCATE: 2, I.CALL: 2, I.EXECUTE: 1, I.PROCEED: 1,
    I.SWITCH_ON_TERM: 1, I.SWITCH_ON_CONSTANT: 1, I.SWITCH_ON_STRUCTURE: 2,
    I.NECK_CUT: 1, I.GET_LEVEL: 1, I.CUT: 1,
    I.ESCAPE: 2, I.FAIL_OP: 0, I.NOOP: 0, I.HALT_SUCCESS: 0,
    I.TRY_ME_ELSE: 0, I.RETRY_ME_ELSE: 0, I.TRUST_ME: 0,
    I.TRY: 0, I.RETRY: 0, I.TRUST: 0,
    I.GET_CONSTANTS: 0, I.UNIFY_CONSTANTS: 0, I.GET_LIST_VV: 0,
    I.PUT_ARGS: 0, I.SWITCH_ON_ARG: 1,
}

_CP_FIXED_FIELDS = 7  # prev, e, cp, tr, h, b0, next — per create/restore

_HALT_CODE = [(I.HALT_SUCCESS,)]


class Procedure:
    """A predicate known to the machine."""

    __slots__ = ("pid", "name", "arity", "kind", "code", "clauses",
                 "compiled", "dirty", "fetch", "index", "frozen")

    def __init__(self, pid: int, name: str, arity: int, kind: str,
                 code: Optional[list] = None,
                 clauses: Optional[list] = None,
                 fetch: Optional[Callable] = None,
                 index: bool = True):
        self.pid = pid
        self.name = name
        self.arity = arity
        self.kind = kind          # 'static' | 'dynamic' | 'external'
        self.code = code
        self.clauses = clauses if clauses is not None else []
        # Per-clause compiled code, kept aligned with ``clauses`` for
        # dynamic procedures: assert compiles ONE clause (the paper's
        # incremental compiler, §3.1); only the cheap control/indexing
        # wrapper is rebuilt.
        self.compiled: list = []
        self.dirty = kind == "dynamic"
        self.fetch = fetch
        self.index = index
        self.frozen = False

    @property
    def indicator(self) -> Tuple[str, int]:
        return (self.name, self.arity)

    def __repr__(self) -> str:
        return f"Procedure({self.name}/{self.arity}, {self.kind})"


class _Env:
    """An AND-stack frame: permanent variables + saved continuation."""

    __slots__ = ("prev", "cp_code", "cp_pc", "slots")

    def __init__(self, prev, cp_code, cp_pc, nslots: int):
        self.prev = prev
        self.cp_code = cp_code
        self.cp_pc = cp_pc
        self.slots: list = [None] * nslots


class _ChoicePoint:
    """An OR-stack frame (paper §3.2.1)."""

    __slots__ = ("prev", "args", "e", "cp_code", "cp_pc", "tr", "h", "b0",
                 "next_code", "next_pc", "kind", "generator")

    def __init__(self, prev, args, e, cp_code, cp_pc, tr, h, b0,
                 next_code, next_pc, kind="clause", generator=None):
        self.prev = prev
        self.args = args
        self.e = e
        self.cp_code = cp_code
        self.cp_pc = cp_pc
        self.tr = tr
        self.h = h
        self.b0 = b0
        self.next_code = next_code
        self.next_pc = next_pc
        self.kind = kind          # 'clause' | 'barrier' | 'gen'
        self.generator = generator


class Solution:
    """One answer to a query: variable-name → surface-term bindings."""

    def __init__(self, bindings: Dict[str, Term]):
        self.bindings = bindings

    def __getitem__(self, name: str) -> Term:
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    def __eq__(self, other) -> bool:
        if isinstance(other, Solution):
            return self.bindings == other.bindings
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.bindings.items())
        return f"Solution({inner})"


class Machine:
    """A complete WAM instance: code store, heap, stacks, dictionary."""

    def __init__(self, dictionary: Optional[SegmentedDictionary] = None,
                 index: bool = True,
                 gc_enabled: bool = True,
                 gc_threshold: int = 200_000,
                 optimize: Optional[str] = None):
        self.dictionary = dictionary or SegmentedDictionary(
            segment_capacity=32000)
        self.index_enabled = index
        # Code optimizer (docs/OPTIMIZER.md).  ``optimize=None`` resolves
        # to the process default; the instance is shared with the EDB
        # dynamic loader so the wam_opt_* counters aggregate here.
        self.optimizer = Optimizer(optimize)
        self.reader = Reader()
        self.ctx = CompileContext(self.dictionary, self._define_aux)
        self.compiler = ClauseCompiler(self.ctx)

        self.procedures: Dict[int, Procedure] = {}
        self.unknown_handler: Optional[Callable] = None
        self.output: List[str] = []
        # Observability: the session replaces this with its shared
        # tracer; standalone machines keep the free no-op.
        self.tracer = NULL_TRACER

        # Machine state.
        self.heap: list = []
        self.x: list = [None] * 64
        self.trail: list = []
        self.e: Optional[_Env] = None
        self.b: Optional[_ChoicePoint] = None
        self.b0: Optional[_ChoicePoint] = None
        self.code: list = _HALT_CODE
        self.pc = 0
        self.cp_code: list = _HALT_CODE
        self.cp_pc = 0
        self.s = 0
        self.mode = "read"

        # Counters (benchmarks E7, E10 read these).
        self.instr_count = 0
        self.data_refs = 0
        self.cp_refs = 0
        self.cp_created = 0
        self.backtracks = 0
        self.calls = 0
        self.unify_ops = 0
        self.compile_count = 0
        self.heap_high_water = 0

        # Garbage collection (§3.3.2).
        self.gc_enabled = gc_enabled
        self.gc_threshold = gc_threshold
        self.gc_runs = 0
        self.gc_cells_recovered = 0
        self._gc_floor = 0  # heap size below which GC must not reach

        from .builtins import BUILTINS  # registers indicators on import
        self.builtins = dict(BUILTINS)  # copy: sessions add their own

        # Cooperative interruption (repro.service): when set, the hook
        # is called every ``poll_interval`` instructions from inside
        # :meth:`_run` and may raise (e.g. QueryInterrupted) to abort
        # the query.  Kept as instance attributes so each worker
        # machine can be interrupted independently.
        self.poll_hook: Optional[Callable] = None
        self.poll_interval = 2048

        # Sampled profiler (repro.obs.profiler): when installed *and*
        # active, :meth:`_run` chains its sampler onto the poll hook.
        # The disabled path costs one attribute check per _run entry —
        # the dispatch loop itself is untouched.
        self.profiler = None

        self._dispatch = self._build_dispatch()
        self._nil_id = self.dictionary.intern("[]", 0)
        self._metacall_cache: Dict[str, Tuple[str, int]] = {}
        # External root cells for the garbage collector: single-element
        # lists holding cells that must survive and be relocated.
        self.rooted: List[list] = []

        from .prelude import PRELUDE_SOURCE
        self.consult(PRELUDE_SOURCE)

    # ===================================================== program loading

    def consult(self, text: str) -> None:
        """Compile a program text into main-memory procedures.

        ``:- Goal`` directives are executed as they are read: ``op/3``
        extends this machine's operator table, ``dynamic/1`` declares
        dynamic procedures, anything else is solved as a goal.
        """
        clauses: List[Term] = []
        for term in self.reader.read_terms(text):
            if isinstance(term, Struct) and term.indicator == (":-", 1):
                # Directives may rely on preceding clauses.
                self.load_clauses(clauses)
                clauses = []
                self._directive(term.args[0])
            else:
                clauses.append(term)
        self.load_clauses(clauses)

    def _directive(self, goal: Term) -> None:
        goal = deref(goal)
        if isinstance(goal, Struct) and goal.indicator == ("op", 3):
            priority, type_, name = (deref(a) for a in goal.args)
            if not (isinstance(priority, int) and isinstance(type_, Atom)
                    and isinstance(name, Atom)):
                raise TypeError_("op/3 directive", goal)
            self.reader.operators.add(priority, type_.name, name.name)
            return
        if self.solve_once(goal) is None:
            raise PrologError(
                f"directive failed: {goal!r}")

    def consult_file(self, path: str) -> None:
        """Consult a Prolog source file."""
        with open(path, "r", encoding="utf-8") as f:
            self.consult(f.read())

    def load_clauses(self, clauses: List[Term]) -> None:
        """Group clauses by indicator and define static procedures."""
        grouped: Dict[Tuple[str, int], List[Term]] = {}
        order: List[Tuple[str, int]] = []
        for clause in clauses:
            head, _ = split_clause(clause)
            ind = (head.name, head.arity if isinstance(head, Struct) else 0)
            if ind not in grouped:
                grouped[ind] = []
                order.append(ind)
            grouped[ind].append(clause)
        for name, arity in order:
            self.define_procedure(name, arity, grouped[(name, arity)])

    def define_procedure(self, name: str, arity: int, clauses: List[Term],
                         kind: str = "static", index: Optional[bool] = None
                         ) -> Procedure:
        """Define (or redefine) a procedure from surface clauses."""
        if is_builtin_indicator(name, arity):
            raise PrologError(
                f"cannot redefine built-in {name}/{arity}")
        pid = self.dictionary.intern(name, arity)
        use_index = self.index_enabled if index is None else index
        proc = Procedure(pid, name, arity, kind, clauses=list(clauses),
                         index=use_index)
        if kind == "static":
            self.compile_count += len(clauses)
            # Keep the per-clause compiled code so ``set_optimize`` can
            # rebuild the control wrapper without recompiling clauses.
            proc.compiled = [self.compiler.compile_clause(c)
                             for c in clauses]
            proc.code = self._build_block(proc)
        self.procedures[pid] = proc
        return proc

    def define_external(self, name: str, arity: int,
                        fetch: Callable) -> Procedure:
        """Register an EDB-backed procedure; *fetch(machine, proc)* must
        return an executable code block for the current call pattern."""
        pid = self.dictionary.intern(name, arity)
        proc = Procedure(pid, name, arity, "external", fetch=fetch)
        self.procedures[pid] = proc
        return proc

    def procedure(self, name: str, arity: int) -> Optional[Procedure]:
        pid = self.dictionary.lookup(name, arity)
        if pid is None:
            return None
        return self.procedures.get(pid)

    def _compile_procedure(self, clauses: List[Term], index: bool) -> list:
        self.compile_count += len(clauses)
        compiled = [self.compiler.compile_clause(c) for c in clauses]
        return build_optimized_block(compiled, index=index,
                                     optimizer=self.optimizer,
                                     dictionary=self.dictionary)

    def _build_block(self, proc: Procedure) -> list:
        return build_optimized_block(
            proc.compiled, index=proc.index, optimizer=self.optimizer,
            dictionary=self.dictionary,
            procedure=f"{proc.name}/{proc.arity}")

    def set_optimize(self, level: str) -> None:
        """Change the optimization level and rebuild every main-memory
        procedure's control wrapper at the new level (per-clause compiled
        code is reused; dynamics rebuild lazily on next call)."""
        if level == self.optimizer.level:
            return
        self.optimizer.set_level(level)
        self.rebuild_blocks()

    def rebuild_blocks(self) -> None:
        """Rebuild every main-memory procedure's control wrapper at the
        optimizer's current settings — used when the level changes and
        when whole-program mode facts are (re)installed."""
        for proc in self.procedures.values():
            if proc.kind == "static" and proc.compiled:
                proc.code = self._build_block(proc)
            elif proc.kind == "dynamic":
                proc.dirty = True

    def _define_aux(self, name: str, arity: int, clauses: List[Term]) -> None:
        self.define_procedure(name, arity, clauses, index=False)

    # ===================================================== queries

    def solve(self, goal, limit: Optional[int] = None) -> Iterator[Solution]:
        """Solve *goal* (text or term); yield :class:`Solution` objects.

        Backtracking is driven lazily: requesting the next solution forces
        a failure and resumes the machine.
        """
        if isinstance(goal, str):
            goal_term, varmap = self.reader.read_term_with_vars(goal)
        else:
            goal_term = goal
            varmap = {v.name: v for v in _surface_vars(goal_term)
                      if not v.name.startswith("_")}

        if self.tracer.enabled:
            if isinstance(goal, str):
                label = " ".join(goal.split())[:200]
            else:
                from ..lang.writer import term_to_text
                label = term_to_text(goal_term)[:200]
        else:
            label = ""

        mark = self._save_state()
        holders: List[list] = []
        count = 0
        with self.tracer.span("query", goal=label) as qspan:
            try:
                cell, addr_of = self._build(goal_term, {})
                # GC-safe watch cells: the collector rewrites holder
                # contents.
                watch = {}
                for name, var in varmap.items():
                    addr = addr_of.get(id(var))
                    if addr is not None:
                        holder = [("REF", addr)]
                        watch[name] = holder
                        holders.append(holder)
                self.rooted.extend(holders)
                for _ in self._solve_cell(cell):
                    bindings = {}
                    memo: dict = {}
                    for name, holder in watch.items():
                        bindings[name] = self._extract(holder[0], memo)
                    count += 1   # before yield: consumer may not resume
                    yield Solution(bindings)
                    if limit is not None and count >= limit:
                        return
            finally:
                if qspan is not None:
                    qspan.attrs["solutions"] = count
                for holder in holders:
                    self.rooted.remove(holder)
                self._restore_state(mark)

    def solve_once(self, goal) -> Optional[Solution]:
        """First solution or None."""
        for solution in self.solve(goal, limit=1):
            return solution
        return None

    def count_solutions(self, goal) -> int:
        return sum(1 for _ in self.solve(goal))

    # --------------------------------------------------------- nested solve

    def _solve_cell(self, goal_cell) -> Iterator[bool]:
        """Run *goal_cell* as a goal; yield once per solution.

        Creates a barrier choice point; exhausting alternatives below the
        barrier ends the iteration with all state restored.  Re-entrant:
        built-ins (findall, forall...) nest their own solve loops.
        """
        saved = (self.code, self.pc, self.cp_code, self.cp_pc, self.e,
                 self.b0, self.mode, self.s)
        barrier = self._push_barrier()
        self.cp_code, self.cp_pc = _HALT_CODE, 0
        try:
            status = self._metacall(goal_cell)
            if status == "fail":
                status = self._backtrack(barrier)
            while True:
                if status != "exhausted":
                    status = self._run(barrier)
                if status == "exhausted":
                    return
                yield True
                status = self._backtrack(barrier)
        finally:
            # Barrier may already be popped on exhaustion; pop if present.
            self._pop_barrier(barrier)
            (self.code, self.pc, self.cp_code, self.cp_pc, self.e,
             self.b0, self.mode, self.s) = saved

    def solve_goal_once(self, goal_cell) -> bool:
        """Solve *goal_cell* once, **keeping** the bindings of the first
        solution (implements ``once/1`` / ``ignore/1``).

        Unlike :meth:`_solve_cell`, success discards the alternatives
        above the barrier but leaves the trail and heap intact.
        """
        saved = (self.code, self.pc, self.cp_code, self.cp_pc, self.e,
                 self.b0, self.mode, self.s)
        barrier = self._push_barrier()
        self.cp_code, self.cp_pc = _HALT_CODE, 0
        try:
            status = self._metacall(goal_cell)
            if status == "fail":
                status = self._backtrack(barrier)
            if status != "exhausted":
                status = self._run(barrier)
            if status == "exhausted":
                return False
            # Success: prune everything above the barrier, keep bindings.
            self.b = barrier.prev
            return True
        finally:
            if self.b is not None and self.b is barrier:
                self.b = barrier.prev  # defensive: never leak the barrier
            (self.code, self.pc, self.cp_code, self.cp_pc, self.e,
             self.b0, self.mode, self.s) = saved

    def _push_barrier(self) -> _ChoicePoint:
        cp = _ChoicePoint(
            prev=self.b, args=(), e=self.e,
            cp_code=self.cp_code, cp_pc=self.cp_pc,
            tr=len(self.trail), h=len(self.heap), b0=self.b0,
            next_code=None, next_pc=0, kind="barrier")
        self.b = cp
        self.cp_created += 1
        self.cp_refs += _CP_FIXED_FIELDS
        return cp

    def _pop_barrier(self, barrier: _ChoicePoint) -> None:
        cursor = self.b
        while cursor is not None and cursor is not barrier:
            cursor = cursor.prev
        if cursor is barrier:
            # Unwind everything above (and including) the barrier.
            self._unwind_trail(barrier.tr)
            del self.heap[barrier.h:]
            self.b = barrier.prev

    def _save_state(self) -> tuple:
        return (len(self.heap), len(self.trail), self.b, self.e,
                self.code, self.pc, self.cp_code, self.cp_pc, self.b0)

    def _restore_state(self, mark: tuple) -> None:
        (h, tr, b, e, code, pc, cp_code, cp_pc, b0) = mark
        self._unwind_trail(tr)
        del self.heap[h:]
        self.b = b
        self.e = e
        self.code, self.pc = code, pc
        self.cp_code, self.cp_pc = cp_code, cp_pc
        self.b0 = b0

    # ===================================================== main loop

    # Optional per-instruction hook: fn(machine, instr).  Read once per
    # _run entry; installed by repro.wam.debugger.Tracer.
    trace_hook = None

    def _run(self, barrier: _ChoicePoint) -> str:
        """Execute until success ('success') or exhaustion below
        *barrier* ('exhausted')."""
        dispatch = self._dispatch
        cost = _DATA_COST
        hook = self.trace_hook
        poll = self.poll_hook
        poll_interval = self.poll_interval
        profiler = self.profiler
        since_poll = 0
        if profiler is not None and profiler.active and poll is not None:
            # Sampling rides the poll boundary *when one is installed*
            # (deadline/cancel polls keep firing): the per-instruction
            # countdown below is already being paid for the hook, so
            # the sampler comes along for free.  Without a hook the
            # countdown stays off — straight-line code samples at call
            # boundaries instead (see _dispatch_call), which is what
            # keeps enabled-sampling overhead inside its 2 % budget.
            poll = profiler.chain(self, poll)
            poll_interval = min(poll_interval, profiler.interval)
        while True:
            instr = self.code[self.pc]
            self.pc += 1
            op = instr[0]
            self.instr_count += 1
            self.data_refs += cost[op]
            if hook is not None:
                hook(self, instr)
            if poll is not None:
                since_poll += 1
                if since_poll >= poll_interval:
                    since_poll = 0
                    poll(self)
            result = dispatch[op](instr)
            if result is None:
                continue
            if result == "halt":
                return "success"
            # result == 'fail'
            status = self._backtrack(barrier)
            if status == "exhausted":
                return "exhausted"

    def _backtrack(self, barrier: _ChoicePoint) -> str:
        """Restore the newest choice point and resume its next alternative;
        'exhausted' once the *barrier* is reached."""
        self.backtracks += 1
        while True:
            cp = self.b
            if cp is None:
                raise MachineError("backtrack past the bottom of the OR-stack")
            if cp.kind == "barrier":
                if cp is not barrier:
                    # A nested barrier must already have been popped.
                    raise MachineError("foreign barrier on backtrack")
                self._unwind_trail(cp.tr)
                del self.heap[cp.h:]
                self.e = cp.e
                self.b = cp.prev
                return "exhausted"

            # Restore machine state from the choice point.
            self._unwind_trail(cp.tr)
            del self.heap[cp.h:]
            nargs = len(cp.args)
            self.x[:nargs] = list(cp.args)
            self.e = cp.e
            self.cp_code, self.cp_pc = cp.cp_code, cp.cp_pc
            self.b0 = cp.b0
            self.cp_refs += _CP_FIXED_FIELDS + nargs
            self.data_refs += _CP_FIXED_FIELDS + nargs

            if cp.kind == "gen":
                assert cp.generator is not None
                try:
                    next(cp.generator)
                except StopIteration:
                    self.b = cp.prev
                    continue
                # Generator produced another solution: resume after escape.
                self.code, self.pc = cp.next_code, cp.next_pc
                return "resumed"
            self.code, self.pc = cp.next_code, cp.next_pc
            return "resumed"

    def _unwind_trail(self, mark: int) -> None:
        trail = self.trail
        heap = self.heap
        for i in range(len(trail) - 1, mark - 1, -1):
            addr = trail[i]
            heap[addr] = ("REF", addr)
        del trail[mark:]

    # ===================================================== heap primitives

    def deref_cell(self, cell):
        heap = self.heap
        while cell[0] == "REF":
            addr = cell[1]
            at = heap[addr]
            if at[0] == "REF" and at[1] == addr:
                return at
            cell = at
        return cell

    def bind(self, addr: int, cell) -> None:
        self.heap[addr] = cell
        hb = self.b.h if self.b is not None else 0
        if addr < hb:
            self.trail.append(addr)
        self.data_refs += 1

    def new_var(self):
        h = len(self.heap)
        cell = ("REF", h)
        self.heap.append(cell)
        return cell

    def unify(self, c1, c2) -> bool:
        """General unifier over cells (no occurs check, as in the WAM)."""
        self.unify_ops += 1
        heap = self.heap
        stack = [(c1, c2)]
        push = stack.append
        pop = stack.pop
        while stack:
            a, b = pop()
            a = self.deref_cell(a)
            b = self.deref_cell(b)
            self.data_refs += 2
            ta, tb = a[0], b[0]
            if ta == "REF":
                if tb == "REF":
                    aa, ba = a[1], b[1]
                    if aa == ba:
                        continue
                    if aa < ba:
                        self.bind(ba, a)
                    else:
                        self.bind(aa, b)
                else:
                    self.bind(a[1], b)
                continue
            if tb == "REF":
                self.bind(b[1], a)
                continue
            if ta != tb:
                return False
            if ta == "CON" or ta == "INT" or ta == "FLT":
                if a[1] != b[1]:
                    return False
                continue
            if ta == "LIS":
                aa, ba = a[1], b[1]
                if aa == ba:
                    continue
                push((heap[aa], heap[ba]))
                push((heap[aa + 1], heap[ba + 1]))
                continue
            if ta == "STR":
                aa, ba = a[1], b[1]
                if aa == ba:
                    continue
                fa, fb = heap[aa], heap[ba]
                if fa[1] != fb[1]:
                    return False
                arity = self.dictionary.arity(fa[1])
                for k in range(1, arity + 1):
                    push((heap[aa + k], heap[ba + k]))
                continue
            raise MachineError(f"bad cell tag {ta}")
        return True

    # ---------------------------------------------- term <-> heap conversion

    def _build(self, term: Term, addr_of: dict) -> tuple:
        """Copy a surface term onto the heap; returns (cell, var-addr map)."""
        cell = self._build_cell(term, addr_of)
        return cell, addr_of

    def _build_cell(self, term: Term, addr_of: dict):
        term = deref(term)
        if isinstance(term, Var):
            addr = addr_of.get(id(term))
            if addr is None:
                cell = self.new_var()
                addr_of[id(term)] = cell[1]
                return cell
            return ("REF", addr)
        if isinstance(term, Atom):
            if term is NIL:
                return ("CON", self._nil_id)
            return ("CON", self.dictionary.intern(term.name, 0))
        if isinstance(term, bool):
            raise TypeError_("term", term)
        if isinstance(term, int):
            return ("INT", term)
        if isinstance(term, float):
            return ("FLT", term)
        assert isinstance(term, Struct)
        heap = self.heap
        if term.indicator == (".", 2):
            # Iterative over the spine: lists can be arbitrarily long.
            spine: List[Term] = []
            cursor: Term = term
            while (isinstance(cursor, Struct)
                   and cursor.indicator == (".", 2)):
                spine.append(cursor.args[0])
                cursor = deref(cursor.args[1])
            head_cells = [self._build_cell(x, addr_of) for x in spine]
            tail_cell = self._build_cell(cursor, addr_of)
            for head in reversed(head_cells):
                a = len(heap)
                heap.append(head)
                heap.append(tail_cell)
                tail_cell = ("LIS", a)
            return tail_cell
        arg_cells = [self._build_cell(a, addr_of) for a in term.args]
        fid = self.dictionary.intern(term.name, term.arity)
        a = len(heap)
        heap.append(("FUN", fid))
        heap.extend(arg_cells)
        return ("STR", a)

    def _extract(self, cell, memo: dict, _visiting: Optional[set] = None
                 ) -> Term:
        """Heap cell → surface term; unbound cells become fresh Vars.

        Cyclic terms (possible because WAM unification omits the occurs
        check) are cut at the back edge with a fresh variable, so
        extraction always terminates; use ``acyclic_term/1`` to detect
        them explicitly.
        """
        if _visiting is None:
            _visiting = set()
        cell = self.deref_cell(cell)
        tag = cell[0]
        if tag == "REF":
            addr = cell[1]
            var = memo.get(addr)
            if var is None:
                var = Var()
                memo[addr] = var
            return var
        if tag == "CON":
            return Atom(self.dictionary.name(cell[1]))
        if tag == "INT" or tag == "FLT":
            return cell[1]
        if tag == "LIS":
            # Iterative over the spine: lists can be arbitrarily long.
            heads: List[Term] = []
            spine: List[int] = []
            while tag == "LIS":
                a = cell[1]
                if a in _visiting:
                    break  # cyclic spine: cut with a fresh var
                _visiting.add(a)
                spine.append(a)
                heads.append(self._extract(self.heap[a], memo, _visiting))
                cell = self.deref_cell(self.heap[a + 1])
                tag = cell[0]
            if tag == "LIS":  # loop broken by the cycle guard
                result: Term = Var()
            else:
                result = self._extract(cell, memo, _visiting)
            for a in spine:
                _visiting.discard(a)
            for head in reversed(heads):
                result = Struct(".", (head, result))
            return result
        if tag == "STR":
            a = cell[1]
            if a in _visiting:
                return Var()  # back edge: cut the cycle
            _visiting.add(a)
            fid = self.heap[a][1]
            name, arity = self.dictionary.functor(fid)
            args = tuple(
                self._extract(self.heap[a + k], memo, _visiting)
                for k in range(1, arity + 1)
            )
            _visiting.discard(a)
            return Struct(name, args)
        raise MachineError(f"cannot extract cell {cell!r}")

    def extract(self, cell) -> Term:
        return self._extract(cell, {})

    # ===================================================== instruction set

    def _build_dispatch(self) -> Dict[str, Callable]:
        return {
            I.GET_VARIABLE: self._i_get_variable,
            I.GET_VALUE: self._i_get_value,
            I.GET_CONSTANT: self._i_get_constant,
            I.GET_NIL: self._i_get_nil,
            I.GET_STRUCTURE: self._i_get_structure,
            I.GET_LIST: self._i_get_list,
            I.PUT_VARIABLE: self._i_put_variable,
            I.PUT_VALUE: self._i_put_value,
            I.PUT_UNSAFE_VALUE: self._i_put_value,
            I.PUT_CONSTANT: self._i_put_constant,
            I.PUT_NIL: self._i_put_nil,
            I.PUT_STRUCTURE: self._i_put_structure,
            I.PUT_LIST: self._i_put_list,
            I.UNIFY_VARIABLE: self._i_unify_variable,
            I.UNIFY_VALUE: self._i_unify_value,
            I.UNIFY_LOCAL_VALUE: self._i_unify_value,
            I.UNIFY_CONSTANT: self._i_unify_constant,
            I.UNIFY_NIL: self._i_unify_nil,
            I.UNIFY_VOID: self._i_unify_void,
            I.ALLOCATE: self._i_allocate,
            I.DEALLOCATE: self._i_deallocate,
            I.CALL: self._i_call,
            I.EXECUTE: self._i_execute,
            I.PROCEED: self._i_proceed,
            I.TRY_ME_ELSE: self._i_try_me_else,
            I.RETRY_ME_ELSE: self._i_retry_me_else,
            I.TRUST_ME: self._i_trust_me,
            I.TRY: self._i_try,
            I.RETRY: self._i_retry,
            I.TRUST: self._i_trust,
            I.SWITCH_ON_TERM: self._i_switch_on_term,
            I.SWITCH_ON_CONSTANT: self._i_switch_on_constant,
            I.SWITCH_ON_STRUCTURE: self._i_switch_on_structure,
            I.NECK_CUT: self._i_neck_cut,
            I.GET_LEVEL: self._i_get_level,
            I.CUT: self._i_cut,
            I.ESCAPE: self._i_escape,
            I.FAIL_OP: self._i_fail,
            I.NOOP: self._i_noop,
            I.HALT_SUCCESS: self._i_halt,
            I.GET_CONSTANTS: self._i_get_constants,
            I.UNIFY_CONSTANTS: self._i_unify_constants,
            I.GET_LIST_VV: self._i_get_list_vv,
            I.PUT_ARGS: self._i_put_args,
            I.SWITCH_ON_ARG: self._i_switch_on_arg,
        }

    # --- register access ----------------------------------------------------

    def _reg_read(self, reg):
        if reg[0] == "x":
            return self.x[reg[1]]
        return self.e.slots[reg[1]]

    def _reg_write(self, reg, cell) -> None:
        if reg[0] == "x":
            n = reg[1]
            if n >= len(self.x):
                self.x.extend([None] * (n + 16 - len(self.x)))
            self.x[n] = cell
        else:
            self.e.slots[reg[1]] = cell

    # --- get ------------------------------------------------------------------

    def _i_get_variable(self, instr):
        self._reg_write(instr[1], self.x[instr[2][1]])

    def _i_get_value(self, instr):
        if not self.unify(self._reg_read(instr[1]), self.x[instr[2][1]]):
            return "fail"

    def _const_cell(self, const):
        kind = const[0]
        if kind == "atom":
            return ("CON", const[1])
        if kind == "int":
            return ("INT", const[1])
        return ("FLT", const[1])

    def _i_get_constant(self, instr):
        cell = self.deref_cell(self.x[instr[2][1]])
        if cell[0] == "REF":
            self.bind(cell[1], self._const_cell(instr[1]))
            return None
        want = self._const_cell(instr[1])
        if cell[0] != want[0] or cell[1] != want[1]:
            return "fail"

    def _i_get_nil(self, instr):
        cell = self.deref_cell(self.x[instr[1][1]])
        if cell[0] == "REF":
            self.bind(cell[1], ("CON", self._nil_id))
            return None
        if cell[0] != "CON" or cell[1] != self._nil_id:
            return "fail"

    def _i_get_structure(self, instr):
        fid = instr[1]
        cell = self.deref_cell(self.x[instr[2][1]])
        if cell[0] == "REF":
            h = len(self.heap)
            self.heap.append(("FUN", fid))
            self.bind(cell[1], ("STR", h))
            self.mode = "write"
            return None
        if cell[0] == "STR":
            a = cell[1]
            if self.heap[a][1] == fid:
                self.s = a + 1
                self.mode = "read"
                return None
        return "fail"

    def _i_get_list(self, instr):
        cell = self.deref_cell(self.x[instr[1][1]])
        if cell[0] == "REF":
            h = len(self.heap)
            self.bind(cell[1], ("LIS", h))
            self.mode = "write"
            return None
        if cell[0] == "LIS":
            self.s = cell[1]
            self.mode = "read"
            return None
        return "fail"

    # --- put ---------------------------------------------------------------

    def _i_put_variable(self, instr):
        cell = self.new_var()
        self._reg_write(instr[1], cell)
        self._reg_write(instr[2], cell)

    def _i_put_value(self, instr):
        self._reg_write(instr[2], self._reg_read(instr[1]))

    def _i_put_constant(self, instr):
        self._reg_write(instr[2], self._const_cell(instr[1]))

    def _i_put_nil(self, instr):
        self._reg_write(instr[1], ("CON", self._nil_id))

    def _i_put_structure(self, instr):
        h = len(self.heap)
        self.heap.append(("FUN", instr[1]))
        self._reg_write(instr[2], ("STR", h))
        self.mode = "write"

    def _i_put_list(self, instr):
        self._reg_write(instr[1], ("LIS", len(self.heap)))
        self.mode = "write"

    # --- unify ---------------------------------------------------------------

    def _i_unify_variable(self, instr):
        if self.mode == "read":
            self._reg_write(instr[1], self.heap[self.s])
            self.s += 1
        else:
            self._reg_write(instr[1], self.new_var())

    def _i_unify_value(self, instr):
        if self.mode == "read":
            ok = self.unify(self._reg_read(instr[1]), self.heap[self.s])
            self.s += 1
            if not ok:
                return "fail"
        else:
            self.heap.append(self.deref_cell(self._reg_read(instr[1])))

    def _i_unify_constant(self, instr):
        want = self._const_cell(instr[1])
        if self.mode == "read":
            cell = self.deref_cell(self.heap[self.s])
            self.s += 1
            if cell[0] == "REF":
                self.bind(cell[1], want)
                return None
            if cell[0] != want[0] or cell[1] != want[1]:
                return "fail"
        else:
            self.heap.append(want)

    def _i_unify_nil(self, instr):
        if self.mode == "read":
            cell = self.deref_cell(self.heap[self.s])
            self.s += 1
            if cell[0] == "REF":
                self.bind(cell[1], ("CON", self._nil_id))
                return None
            if cell[0] != "CON" or cell[1] != self._nil_id:
                return "fail"
        else:
            self.heap.append(("CON", self._nil_id))

    def _i_unify_void(self, instr):
        n = instr[1]
        if self.mode == "read":
            self.s += n
        else:
            for _ in range(n):
                self.new_var()

    # --- fused superinstructions (repro.wam.optimizer) ---------------------
    # Each executes the exact semantics of the plain-instruction run it
    # replaces, in source order, and adds the same per-component data
    # costs; only the dispatch overhead (instr_count) is saved.

    def _i_get_constants(self, instr):
        for const, ai in instr[1]:
            self.data_refs += 2
            cell = self.deref_cell(self.x[ai[1]])
            if cell[0] == "REF":
                self.bind(cell[1], self._const_cell(const))
                continue
            want = self._const_cell(const)
            if cell[0] != want[0] or cell[1] != want[1]:
                return "fail"

    def _i_unify_constants(self, instr):
        # Mode cannot change across a run of unify_constant, so the
        # check is hoisted out of the loop.
        if self.mode == "read":
            for const in instr[1]:
                self.data_refs += 2
                want = self._const_cell(const)
                cell = self.deref_cell(self.heap[self.s])
                self.s += 1
                if cell[0] == "REF":
                    self.bind(cell[1], want)
                    continue
                if cell[0] != want[0] or cell[1] != want[1]:
                    return "fail"
        else:
            for const in instr[1]:
                self.data_refs += 2
                self.heap.append(self._const_cell(const))

    def _i_get_list_vv(self, instr):
        self.data_refs += 3  # the get_list component always runs
        cell = self.deref_cell(self.x[instr[1][1]])
        if cell[0] == "REF":
            self.data_refs += 4  # 2 x unify_variable
            self.bind(cell[1], ("LIS", len(self.heap)))
            self._reg_write(instr[2], self.new_var())
            self._reg_write(instr[3], self.new_var())
            self.mode = "write"
            return None
        if cell[0] == "LIS":
            self.data_refs += 4  # 2 x unify_variable
            s = cell[1]
            self._reg_write(instr[2], self.heap[s])
            self._reg_write(instr[3], self.heap[s + 1])
            self.s = s + 2
            self.mode = "read"
            return None
        # an unfused run would stop at the failing get_list: the two
        # unify_variable components never execute, so they cost nothing
        return "fail"

    def _i_put_args(self, instr):
        for item in instr[1]:
            if item[0] == "v":
                self.data_refs += 2
                self._reg_write(item[2], self._reg_read(item[1]))
            else:
                self.data_refs += 1
                self._reg_write(item[2], self._const_cell(item[1]))

    # --- control -----------------------------------------------------------

    def _i_allocate(self, instr):
        self.e = _Env(self.e, self.cp_code, self.cp_pc, instr[1])

    def _i_deallocate(self, instr):
        env = self.e
        self.cp_code, self.cp_pc = env.cp_code, env.cp_pc
        self.e = env.prev

    def _i_call(self, instr):
        self.cp_code, self.cp_pc = self.code, self.pc
        self.calls += 1
        self.b0 = self.b
        return self._dispatch_call(instr[1], instr[2])

    def _i_execute(self, instr):
        self.calls += 1
        self.b0 = self.b
        return self._dispatch_call(instr[1], instr[2])

    def _i_proceed(self, instr):
        self.code, self.pc = self.cp_code, self.cp_pc
        self._maybe_gc()

    def _dispatch_call(self, pid: int, arity: int):
        self._pending_arity = arity
        self._maybe_gc()  # safe point: args in registers, S/mode dead
        profiler = self.profiler
        if profiler is not None and self.instr_count >= profiler.next_due:
            # Call boundaries are the sampler's safe points when no
            # poll hook is installed: one guard per call (instructions
            # are ~20x more frequent, and next_due is infinite while
            # disabled) keeps sampling overhead well under the cost of
            # a per-instruction countdown.
            profiler.sample(self)
        proc = self.procedures.get(pid)
        if proc is None:
            proc = self._resolve_unknown(pid, arity)
            if proc is None:
                return "fail"
        kind = proc.kind
        if kind == "static":
            self.code, self.pc = proc.code, 0
            return None
        if kind == "dynamic":
            if proc.dirty:
                # Incremental: compile only clauses without cached code,
                # then rebuild the control/indexing wrapper.
                while len(proc.compiled) < len(proc.clauses):
                    idx = len(proc.compiled)
                    proc.compiled.append(
                        self.compiler.compile_clause(proc.clauses[idx]))
                    self.compile_count += 1
                proc.code = self._build_block(proc)
                proc.dirty = False
            self.code, self.pc = proc.code, 0
            return None
        if kind == "external":
            code = proc.fetch(self, proc)
            if code is None:
                return "fail"
            if self.profiler is not None:
                # Fetched blocks never appear in ``procedures``; label
                # them here so EDB predicates are attributed like
                # main-memory ones.
                self.profiler.note_code(code, proc.name, proc.arity)
            self.code, self.pc = code, 0
            return None
        raise MachineError(f"cannot call procedure kind {kind}")

    def _resolve_unknown(self, pid: int, arity: int) -> Optional[Procedure]:
        name = self.dictionary.name(pid)
        if self.unknown_handler is not None:
            proc = self.unknown_handler(self, name, arity)
            if proc is not None:
                return proc
        raise ExistenceError("procedure", f"{name}/{arity}")

    # --- choice points --------------------------------------------------------

    def _push_cp(self, next_code, next_pc) -> None:
        nargs = self._current_arity()
        cp = _ChoicePoint(
            prev=self.b,
            args=tuple(self.x[:nargs]),
            e=self.e,
            cp_code=self.cp_code, cp_pc=self.cp_pc,
            tr=len(self.trail), h=len(self.heap), b0=self.b0,
            next_code=next_code, next_pc=next_pc)
        self.b = cp
        self.cp_created += 1
        self.cp_refs += _CP_FIXED_FIELDS + nargs
        self.data_refs += _CP_FIXED_FIELDS + nargs

    def _current_arity(self) -> int:
        # The choice instructions run at procedure entry; the argument
        # registers to save are those of the procedure being tried.  We
        # conservatively save registers up to the highest loaded X.
        n = self._pending_arity
        return n

    # --- clause chains ------------------------------------------------------

    def _i_try_me_else(self, instr):
        self._push_cp(self.code, instr[1])

    def _i_retry_me_else(self, instr):
        self.b.next_code = self.code
        self.b.next_pc = instr[1]
        self.cp_refs += 2
        self.data_refs += 2

    def _i_trust_me(self, instr):
        self.b = self.b.prev
        self.cp_refs += 1
        self.data_refs += 1

    def _i_try(self, instr):
        self._push_cp(self.code, self.pc)
        self.pc = instr[1]

    def _i_retry(self, instr):
        self.b.next_code = self.code
        self.b.next_pc = self.pc
        self.pc = instr[1]
        self.cp_refs += 2
        self.data_refs += 2

    def _i_trust(self, instr):
        self.b = self.b.prev
        self.pc = instr[1]
        self.cp_refs += 1
        self.data_refs += 1

    # --- indexing -----------------------------------------------------------

    def _i_switch_on_term(self, instr):
        cell = self.deref_cell(self.x[0])
        tag = cell[0]
        if tag == "REF":
            self.pc = instr[1]
        elif tag == "LIS":
            self.pc = instr[3]
        elif tag == "STR":
            self.pc = instr[4]
        else:
            self.pc = instr[2]

    def _i_switch_on_constant(self, instr):
        cell = self.deref_cell(self.x[0])
        tag = cell[0]
        if tag == "CON":
            key = ("atom", cell[1])
        elif tag == "INT":
            key = ("int", cell[1])
        else:
            key = ("flt", cell[1])
        self.pc = instr[1].get(key, instr[2])

    def _i_switch_on_structure(self, instr):
        cell = self.deref_cell(self.x[0])
        fid = self.heap[cell[1]][1]
        self.pc = instr[1].get(("fun", fid), instr[2])

    def _i_switch_on_arg(self, instr):
        # (argpos, {const_key: offset}, lvar, lmiss) — the optimizer's
        # chain guard: every guarded clause holds a pairwise-distinct
        # constant at argpos, so a bound constant selects at most one
        # clause (no choice point) and a bound list/structure none.
        cell = self.deref_cell(self.x[instr[1]])
        tag = cell[0]
        if tag == "REF":
            self.pc = instr[3]
            return None
        if tag == "CON":
            key = ("atom", cell[1])
        elif tag == "INT":
            key = ("int", cell[1])
        elif tag == "FLT":
            key = ("flt", cell[1])
        else:  # LIS / STR cannot match an all-constant chain
            self.pc = instr[4]
            return None
        self.pc = instr[2].get(key, instr[4])

    # --- cut -------------------------------------------------------------------

    def _i_neck_cut(self, instr):
        self.b = self.b0

    def _i_get_level(self, instr):
        self.e.slots[instr[1][1]] = ("LVL", self.b0)

    def _i_cut(self, instr):
        cell = self.e.slots[instr[1][1]]
        assert cell is not None and cell[0] == "LVL"
        self.b = cell[1]

    # --- escapes -----------------------------------------------------------------

    def _i_escape(self, instr):
        name, arity = instr[1], instr[2]
        fn = self.builtins[(name, arity)]
        args = [self.x[i] for i in range(arity)]
        self._pending_arity = arity
        result = fn(self, args)
        if result is True:
            return None
        if result is False:
            return "fail"
        if result == "dispatched":
            # The built-in transferred control itself (call/N).
            return None
        # Non-deterministic built-in: a generator of solutions.
        return self._escape_generator(result)

    def _escape_generator(self, gen):
        nargs = self._pending_arity
        cp = _ChoicePoint(
            prev=self.b,
            args=tuple(self.x[:nargs]),
            e=self.e,
            cp_code=self.cp_code, cp_pc=self.cp_pc,
            tr=len(self.trail), h=len(self.heap), b0=self.b0,
            next_code=self.code, next_pc=self.pc,
            kind="gen", generator=gen)
        self.b = cp
        self.cp_created += 1
        self.cp_refs += _CP_FIXED_FIELDS + nargs
        try:
            next(gen)
        except StopIteration:
            self.b = cp.prev
            return "fail"
        return None

    def _i_fail(self, instr):
        return "fail"

    def _i_noop(self, instr):
        return None

    def _i_halt(self, instr):
        return "halt"

    # ===================================================== metacall

    _pending_arity = 0

    def _metacall(self, goal_cell):
        """Call a goal given as a heap cell (``call/1`` and query entry)."""
        cell = self.deref_cell(goal_cell)
        tag = cell[0]
        if tag == "REF":
            raise InstantiationError("call/1: unbound goal")
        if tag == "CON":
            name = self.dictionary.name(cell[1])
            return self._metacall_named(name, 0, cell, ())
        if tag == "STR":
            a = cell[1]
            fid = self.heap[a][1]
            name, arity = self.dictionary.functor(fid)
            args = tuple(self.heap[a + k] for k in range(1, arity + 1))
            return self._metacall_named(name, arity, cell, args)
        raise TypeError_("callable", self.extract(cell))

    _CONTROL = {(",", 2), (";", 2), ("->", 2), ("\\+", 1), ("not", 1),
                ("!", 0)}

    def _metacall_named(self, name, arity, cell, arg_cells):
        if (name, arity) in self._CONTROL or is_builtin_indicator(
                name, arity):
            # Control constructs and built-ins are metacalled by
            # synthesising a one-clause procedure — the incremental
            # compiler handles the construct exactly as in source code.
            return self._metacall_compiled(cell)
        for i, c in enumerate(arg_cells):
            if i >= len(self.x):
                self.x.extend([None] * 16)
            self.x[i] = c
        pid = self.dictionary.intern(name, arity)
        self.calls += 1
        self.b0 = self.b
        return self._dispatch_call(pid, arity)

    def _metacall_compiled(self, cell):
        """Metacall of a control construct or built-in: synthesise and
        call a one-clause procedure whose body is the goal (the
        incremental compiler at work, §3.1).  Synthesised procedures are
        cached by the goal's shape so repeated metacalls reuse code."""
        memo: dict = {}
        body = self._extract(cell, memo)
        var_addrs = list(memo.items())  # [(addr, Var)]
        params = tuple(v for _, v in var_addrs)

        from ..lang.writer import term_to_text
        key = term_to_text(body)
        cached = self._metacall_cache.get(key)
        if cached is not None and len(params) == cached[1]:
            name = cached[0]
        else:
            name = self.ctx.fresh_aux_name()
            head = Atom(name) if not params else Struct(name, params)
            clause = Struct(":-", (head, body))
            self.define_procedure(name, len(params), [clause], index=False)
            self._metacall_cache[key] = (name, len(params))

        for i, (addr, _) in enumerate(var_addrs):
            if i >= len(self.x):
                self.x.extend([None] * 16)
            self.x[i] = ("REF", addr)
        pid = self.dictionary.intern(name, len(params))
        self.calls += 1
        self.b0 = self.b
        return self._dispatch_call(pid, len(params))

    # ===================================================== GC hook

    def _maybe_gc(self) -> None:
        if len(self.heap) > self.heap_high_water:
            self.heap_high_water = len(self.heap)
        if not self.gc_enabled:
            return
        if len(self.heap) - self._gc_floor < self.gc_threshold:
            return
        from .gc import collect_heap
        recovered = collect_heap(self)
        self.gc_runs += 1
        self.gc_cells_recovered += recovered
        self._gc_floor = len(self.heap)

    # ===================================================== misc accessors

    def counters(self) -> dict:
        out = self.optimizer.counters()
        out.update({
            "instr_count": self.instr_count,
            "data_refs": self.data_refs,
            "cp_refs": self.cp_refs,
            "cp_created": self.cp_created,
            "backtracks": self.backtracks,
            "calls": self.calls,
            "unify_ops": self.unify_ops,
            "compile_count": self.compile_count,
            "heap_high_water": self.heap_high_water,
            "gc_runs": self.gc_runs,
            "gc_cells_recovered": self.gc_cells_recovered,
        })
        if self.profiler is not None:
            out.update(self.profiler.counters())
        return out

    def reset_counters(self) -> None:
        self.optimizer.reset_counters()
        self.instr_count = 0
        self.data_refs = 0
        self.cp_refs = 0
        self.cp_created = 0
        self.backtracks = 0
        self.calls = 0
        self.unify_ops = 0
        self.compile_count = 0


def _surface_vars(term: Term) -> List[Var]:
    from ..terms import term_variables
    return term_variables(term)
