"""Library predicates, written in Prolog and compiled at machine start.

These are ordinary compiled procedures — they exercise the same WAM code
paths as user programs (list traversal dominates the MVV workload, so the
library being compiled matters for fidelity).
"""

PRELUDE_SOURCE = r"""
% lint: disable=L104 member/2 select/3 closure_step/4 maplist/2 maplist/3 maplist/4
% (library predicates are legitimately list-recursive: their first
% argument is an unbound output or a partial list in normal use, so
% first-argument indexing never had a chance — waived, docs/ANALYSIS.md)

% ------------------------------------------------------------------ lists
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, [Y|T]) :- ( X = Y -> true ; memberchk(X, T) ).

reverse(L, R) :- reverse_acc(L, [], R).
reverse_acc([], A, A).
reverse_acc([H|T], A, R) :- reverse_acc(T, [H|A], R).

nth0(I, L, E) :- nth_from(L, 0, I, E).
nth1(I, L, E) :- nth_from(L, 1, I, E).
nth_from([H|_], N, N, H).
nth_from([_|T], N0, N, E) :- N1 is N0 + 1, nth_from(T, N1, N, E).

last([X], X).
last([_|T], X) :- last(T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

delete([], _, []).
delete([H|T], X, R) :- \+ H \= X, !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

subtract([], _, []).
subtract([H|T], L, R) :- memberchk(H, L), !, subtract(T, L, R).
subtract([H|T], L, [H|R]) :- subtract(T, L, R).

intersection([], _, []).
intersection([H|T], L, [H|R]) :- memberchk(H, L), !, intersection(T, L, R).
intersection([_|T], L, R) :- intersection(T, L, R).

union([], L, L).
union([H|T], L, R) :- memberchk(H, L), !, union(T, L, R).
union([H|T], L, [H|R]) :- union(T, L, R).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S0), S is S0 + H.
sumlist(L, S) :- sum_list(L, S).

max_list([H|T], M) :- max_list_acc(T, H, M).
max_list_acc([], M, M).
max_list_acc([H|T], A, M) :-
    ( H > A -> max_list_acc(T, H, M) ; max_list_acc(T, A, M) ).

min_list([H|T], M) :- min_list_acc(T, H, M).
min_list_acc([], M, M).
min_list_acc([H|T], A, M) :-
    ( H < A -> min_list_acc(T, H, M) ; min_list_acc(T, A, M) ).

numlist(L, H, [L|T]) :- L =< H, ( L =:= H -> T = [] ;
    L1 is L + 1, numlist(L1, H, T) ).

% ------------------------------------------------------ cyclic-data safety
% Transitive closure over a binary relation with a visited list — the
% library-level facility for querying cyclic data (graphs with loops)
% without non-termination (paper §1).
closure(Rel, X, Y) :- closure_step(Rel, X, Y, [X]).
closure_step(Rel, X, Y, _) :- call(Rel, X, Y).
closure_step(Rel, X, Y, Seen) :-
    call(Rel, X, Z),
    \+ memberchk(Z, Seen),
    closure_step(Rel, Z, Y, [Z|Seen]).

% ---------------------------------------------------------------- maplist
maplist(_, []).
maplist(G, [H|T]) :- call(G, H), maplist(G, T).

maplist(_, [], []).
maplist(G, [H|T], [H2|T2]) :- call(G, H, H2), maplist(G, T, T2).

maplist(_, [], [], []).
maplist(G, [A|As], [B|Bs], [C|Cs]) :-
    call(G, A, B, C), maplist(G, As, Bs, Cs).
"""
