"""Typed relations over the BANG grid.

Each relation is one :class:`~repro.bang.grid.BangGrid` whose dimensions
are the relation's key attributes; a tuple's key vector is computed by
*order-preserving* transforms into ``[0, 1)`` so that both exact and
range partial-match queries cluster (§2.2: indices make the relation
look like "a sequential file" on the probed attributes).

``term`` attributes implement the paper's §3.2.2/§4 scheme — *indexing
on type and value*:

* the dimension is split into type bands (int / real / atom / list /
  structure / var);
* within a band, the value's order-preserving fraction (integers, atom
  names) or functor hash (structures) positions the key;
* clause head arguments that are **variables** occupy their own band,
  and every bound query adds the var band to its search region — a
  variable head argument matches any query value.

Stored values at the Python level: ``int``, ``float``, ``str`` (atoms),
and for ``term`` columns a tagged tuple such as ``('atom', 'foo')``,
``('int', 3)``, ``('struct', 'f', 2)``, ``('list',)`` or ``('var',)``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..dictionary import fnv1a
from ..errors import CatalogError, TypeError_
from .catalog import RelationSchema
from .grid import BangGrid, Box
from .pager import Pager

# Type bands for `term` dimensions: [band/NBANDS, (band+1)/NBANDS).
_BANDS = {"int": 0, "real": 1, "atom": 2, "list": 3, "struct": 4, "var": 5}
_NBANDS = 6
_EPS = 1e-9


def squash_number(x: float) -> float:
    """Strictly monotonic map of any real to (0, 1).

    Log-scaled so that values of every magnitude (small domain keys and
    64-bit hash identifiers alike) keep usable spread; the grid's median
    splits adapt to whatever distribution results, so only monotonicity
    matters for correctness.
    """
    x = float(x)
    magnitude = math.log2(1.0 + abs(x)) / 256.0
    if x < 0:
        return 0.5 - magnitude
    return 0.5 + magnitude


def string_fraction(text: str) -> float:
    """Lexicographically monotonic map of a string to [0, 1)."""
    data = text.encode("utf-8")[:7]
    value = 0.0
    scale = 1.0
    for byte in data:
        scale /= 256.0
        value += byte * scale
    return min(value, 1.0 - _EPS)


def functor_fraction(name: str, arity: int) -> float:
    """Hash-based fraction for structure functors (exact match only)."""
    return (fnv1a(name, arity) % (1 << 30)) / float(1 << 30)


def _band_value(band: str, frac: float) -> float:
    base = _BANDS[band] / _NBANDS
    return base + max(0.0, min(frac, 1.0 - _EPS)) / _NBANDS


def _band_range(band: str) -> Tuple[float, float]:
    lo = _BANDS[band] / _NBANDS
    return (lo, lo + 1.0 / _NBANDS - _EPS)


def encode_value(attr_type: str, value: Any) -> float:
    """Key fraction of a stored attribute value."""
    if attr_type == "int":
        if not isinstance(value, int):
            raise TypeError_("integer", value)
        return squash_number(value)
    if attr_type == "real":
        return squash_number(float(value))
    if attr_type in ("atom", "tagged"):
        if isinstance(value, str):
            return string_fraction(value)
        if isinstance(value, (int, float)):
            # tagged numeric values share the numeric transform
            return squash_number(float(value))
        raise TypeError_(attr_type, value)
    # term column: tagged tuples
    if not isinstance(value, tuple) or not value:
        raise TypeError_("term summary", value)
    kind = value[0]
    if kind == "int":
        return _band_value("int", squash_number(value[1]))
    if kind == "real":
        return _band_value("real", squash_number(value[1]))
    if kind == "atom":
        return _band_value("atom", string_fraction(value[1]))
    if kind == "list":
        return _band_value("list", 0.5)
    if kind == "struct":
        return _band_value("struct", functor_fraction(value[1], value[2]))
    if kind == "var":
        return _band_value("var", 0.5)
    raise TypeError_("term summary", value)


class BangRelation:
    """A stored relation with clustered multidimensional access."""

    def __init__(self, schema: RelationSchema, pager: Pager,
                 bucket_capacity: int = 50):
        self.schema = schema
        self.key_dims = schema.keys()
        if not self.key_dims:
            raise CatalogError(f"{schema.name}: empty key")
        self.grid = BangGrid(len(self.key_dims), pager, bucket_capacity)
        self._types = [a.type for a in schema.attributes]

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def arity(self) -> int:
        return self.schema.arity

    def __len__(self) -> int:
        return self.grid.size

    # ----------------------------------------------------------------- write

    def insert(self, values: Sequence[Any]) -> None:
        if len(values) != self.arity:
            raise CatalogError(
                f"{self.name}: arity {self.arity}, got {len(values)}")
        self.grid.insert(self._key_of(values), tuple(values))

    def insert_many(self, rows) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete(self, values: Sequence[Any]) -> int:
        """Delete exact tuples equal to *values*."""
        target = tuple(values)
        return self.grid.delete(self._key_of(values),
                                lambda rec: rec == target)

    def delete_where(self, assignment: Dict[int, Any]) -> int:
        """Delete every tuple matching the partial assignment."""
        victims = list(self.query(assignment))
        removed = 0
        for row in victims:
            removed += self.delete(row)
        return removed

    def _key_of(self, values: Sequence[Any]) -> List[float]:
        return [
            encode_value(self._types[d], values[d]) for d in self.key_dims
        ]

    # ------------------------------------------------------------------ read

    def scan(self) -> Iterator[tuple]:
        yield from self.grid.scan()

    def query(self, assignment: Dict[int, Any]) -> Iterator[tuple]:
        """Exact partial-match: ``{attr_index: value}``.

        ``term`` dimensions automatically include the var band (a stored
        variable head argument matches any query value).  Results are
        post-filtered so callers get exact matches only.
        """
        for box in self._boxes_for(assignment):
            for row in self.grid.query(box):
                if self._row_matches(row, assignment):
                    yield row

    def _row_matches(self, row: tuple, assignment: Dict[int, Any]) -> bool:
        for idx, want in assignment.items():
            have = row[idx]
            if self._types[idx] == "term":
                if isinstance(have, tuple) and have and have[0] == "var":
                    continue
            if have != want:
                return False
        return True

    def range_query(self, attr: int, low: Any, high: Any,
                    extra: Optional[Dict[int, Any]] = None
                    ) -> Iterator[tuple]:
        """Tuples with ``low <= row[attr] <= high`` (plus exact *extra*).

        Only meaningful on ``int``/``real``/``atom`` attributes, whose key
        transforms preserve order."""
        attr_type = self._types[attr]
        if attr_type == "term":
            raise TypeError_("orderable attribute", self.schema.name)
        extra = extra or {}
        ranges: Dict[int, Tuple[float, float]] = {
            attr: (encode_value(attr_type, low),
                   encode_value(attr_type, high))
        }
        boxes = self._boxes_for(extra, ranges)
        for box in boxes:
            for row in self.grid.query(box):
                if not (low <= row[attr] <= high):
                    continue
                if self._row_matches(row, extra):
                    yield row

    def type_query(self, attr: int, band: str,
                   extra: Optional[Dict[int, Any]] = None) -> Iterator[tuple]:
        """Tuples whose ``term`` attribute has the given type band — the
        paper's "indexing over the type of the term" (§3.2.2)."""
        if self._types[attr] != "term":
            raise TypeError_("term attribute", self.schema.name)
        if band not in _BANDS:
            raise TypeError_("type band", band)
        extra = extra or {}
        ranges = {attr: _band_range(band)}
        for box in self._boxes_for(extra, ranges):
            for row in self.grid.query(box):
                value = row[attr]
                if not (isinstance(value, tuple) and value
                        and value[0] == band):
                    continue
                if self._row_matches(row, extra):
                    yield row

    # ------------------------------------------------------------- planning

    def pages_for(self, assignment: Dict[int, Any]) -> int:
        return sum(
            self.grid.leaves_for(box)
            for box in self._boxes_for(assignment)
        )

    def _boxes_for(self, assignment: Dict[int, Any],
                   ranges: Optional[Dict[int, Tuple[float, float]]] = None
                   ) -> List[Box]:
        """Search boxes for a partial match.  Bound ``term`` dimensions
        double the box count (value band + var band), capped at 8 boxes
        — further term dims stay unconstrained and rely on the
        post-filter."""
        ranges = ranges or {}
        dims: List[List[Tuple[float, float]]] = []
        boxes = 1
        for pos, attr in enumerate(self.key_dims):
            if attr in ranges:
                dims.append([ranges[attr]])
                continue
            if attr not in assignment:
                dims.append([(0.0, 1.0)])
                continue
            value = assignment[attr]
            frac = encode_value(self._types[attr], value)
            point = (frac, frac)
            if self._types[attr] == "term" and boxes < 8:
                dims.append([point, _band_range("var")])
                boxes *= 2
            elif self._types[attr] == "term":
                dims.append([(0.0, 1.0)])
            else:
                dims.append([point])

        out: List[Box] = [()]
        for options in dims:
            out = [box + (opt,) for box in out for opt in options]
        return out
