"""Paged storage with I/O accounting.

The "disc" is a byte store keyed by page id; pages are pickled on write
and unpickled on read, so a page fetch does real (de)serialisation work —
the CPU/IO split the paper measures (§2.2, §5.4) is therefore observable,
not merely asserted.

Counters:

* ``reads`` / ``writes`` — page transfers to/from the disc store, the
  quantity Table 2b reports as "read and write pages";
* ``bytes_read`` / ``bytes_written`` — transfer volume for the cost
  model's transfer-time term.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

from ..errors import PageError
from ..obs.tracing import NULL_TRACER

DEFAULT_PAGE_SIZE = 4096


class DiskStore:
    """The simulated disc: page id → serialized page image."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._pages: Dict[int, bytes] = {}
        self._next_id = 0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # Page transfers are recorded as *events* on the enclosing span
        # (span-per-page would be far too fine-grained; see repro.obs).
        self.tracer = NULL_TRACER

    def allocate(self) -> int:
        """Reserve a fresh page id (no I/O)."""
        pid = self._next_id
        self._next_id += 1
        self._pages[pid] = b""
        return pid

    # The tracer belongs to the live session, not the persisted EDB
    # (it can reference the whole session object graph via its
    # snapshot callback).
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["tracer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.tracer = NULL_TRACER

    def read(self, page_id: int) -> Any:
        image = self._pages.get(page_id)
        if image is None:
            raise PageError(f"page {page_id} does not exist")
        self.reads += 1
        self.bytes_read += self.page_size
        if self.tracer.enabled:
            self.tracer.event("page.read", page=page_id,
                              bytes=self.page_size)
        if not image:
            return None
        return pickle.loads(image)

    def write(self, page_id: int, payload: Any) -> None:
        if page_id not in self._pages:
            raise PageError(f"page {page_id} does not exist")
        self.writes += 1
        self.bytes_written += self.page_size
        if self.tracer.enabled:
            self.tracer.event("page.write", page=page_id,
                              bytes=self.page_size)
        self._pages[page_id] = pickle.dumps(payload, protocol=4)

    def free(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def io_counters(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "pages": self.page_count,
        }


class Pager:
    """Page allocation + access through a buffer pool.

    All page traffic goes through :class:`~repro.bang.buffer.BufferPool`;
    the pager is the single facade storage clients use.
    """

    def __init__(self, disk: Optional[DiskStore] = None,
                 buffer_pages: int = 128):
        from .buffer import BufferPool  # local import to avoid cycle
        self.disk = disk or DiskStore()
        self.buffer = BufferPool(self.disk, capacity=buffer_pages)

    def allocate(self, initial: Any = None) -> int:
        pid = self.disk.allocate()
        self.buffer.install(pid, initial)
        return pid

    def get(self, page_id: int) -> Any:
        return self.buffer.get(page_id)

    def put(self, page_id: int, payload: Any) -> None:
        self.buffer.put(page_id, payload)

    def flush(self) -> None:
        self.buffer.flush()

    def free(self, page_id: int) -> None:
        """Release a page entirely (buffer frame + disc image)."""
        self.buffer.discard(page_id)
        self.disk.free(page_id)

    def io_counters(self) -> dict:
        counters = self.disk.io_counters()
        counters.update(self.buffer.counters())
        return counters

    def reset_counters(self) -> None:
        self.disk.reset_counters()
        self.buffer.reset_counters()

    @property
    def tracer(self):
        return self.disk.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        """One assignment threads the shared tracer through the whole
        storage stack (disc events + buffer eviction events)."""
        self.disk.tracer = tracer
        self.buffer.tracer = tracer
