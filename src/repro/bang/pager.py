"""Paged storage with I/O accounting.

The "disc" is a byte store keyed by page id; pages are pickled on write
and unpickled on read, so a page fetch does real (de)serialisation work —
the CPU/IO split the paper measures (§2.2, §5.4) is therefore observable,
not merely asserted.

Two disc implementations share the :class:`DiskStore` interface:

* :class:`DiskStore` — page images in a dict, the default for
  throw-away sessions and benchmarks;
* :class:`FileDiskStore` — page images laid out in a real file, one
  framed record per page write with a ``(magic, page id, length,
  CRC32)`` header, so torn writes and bit-rot are *detected* at read
  time rather than surfacing as garbage query answers.

Corruption handling is uniform: a page whose image cannot be validated
or deserialised raises a typed :class:`~repro.errors.PageError` and is
**quarantined** — subsequent reads fail fast with a clear message, the
``pages_quarantined`` gauge reflects it, and the rest of the database
stays queryable.  Recovery (:meth:`repro.edb.store.ExternalStore.open`)
runs :meth:`DiskStore.verify_all` to sweep for damage up front.

Counters:

* ``reads`` / ``writes`` — page transfers to/from the disc store, the
  quantity Table 2b reports as "read and write pages";
* ``bytes_read`` / ``bytes_written`` — transfer volume for the cost
  model's transfer-time term;
* ``page_corruptions`` — corrupt page images detected at read/verify
  time (bad frame, CRC mismatch, undecodable payload);
* ``pages_quarantined`` — gauge: pages currently quarantined.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import PageError
from ..obs.tracing import NULL_TRACER
from .faults import NULL_FAULTS, FaultInjector

DEFAULT_PAGE_SIZE = 4096


class DiskStore:
    """The simulated disc: page id → serialized page image.

    Thread safety: page table, counters and (for the file-backed
    subclass) the shared file handle are guarded by one internal I/O
    lock, so concurrent buffer-pool misses from different service
    workers never interleave a seek with another thread's read.
    ``read_latency_s`` optionally simulates disc access latency with a
    real sleep *outside* the lock — concurrent readers overlap their
    stalls exactly as a multi-user KBMS overlaps real disc arms, which
    is what ``benchmarks/bench_concurrency.py`` measures.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._pages: Dict[int, bytes] = {}
        self._next_id = 0
        self._io_lock = threading.Lock()
        self.read_latency_s = 0.0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.page_corruptions = 0
        self.quarantined: Set[int] = set()
        # Page transfers are recorded as *events* on the enclosing span
        # (span-per-page would be far too fine-grained; see repro.obs).
        self.tracer = NULL_TRACER

    def allocate(self) -> int:
        """Reserve a fresh page id (no I/O)."""
        with self._io_lock:
            pid = self._next_id
            self._next_id += 1
            self._register_page(pid)
            return pid

    # The tracer belongs to the live session, not the persisted EDB
    # (it can reference the whole session object graph via its
    # snapshot callback).  The I/O lock and simulated latency are
    # runtime state.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["tracer"] = None
        state["_io_lock"] = None
        state["read_latency_s"] = 0.0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.tracer = NULL_TRACER
        self._io_lock = threading.Lock()
        # Pre-durability pickles lack the corruption fields.
        self.__dict__.setdefault("page_corruptions", 0)
        self.__dict__.setdefault("quarantined", set())
        self.__dict__.setdefault("read_latency_s", 0.0)

    def read(self, page_id: int) -> Any:
        if self.read_latency_s:
            time.sleep(self.read_latency_s)
        with self._io_lock:
            if page_id in self.quarantined:
                raise PageError(
                    f"page {page_id} is quarantined (corrupt image detected)")
            image = self._load_image(page_id)
            self.reads += 1
            self.bytes_read += self.page_size
            if self.tracer.enabled:
                self.tracer.event("page.read", page=page_id,
                                  bytes=self.page_size)
            if not image:
                return None
            return self._deserialize(page_id, image)

    def write(self, page_id: int, payload: Any) -> None:
        with self._io_lock:
            if not self._page_exists(page_id):
                raise PageError(f"page {page_id} does not exist")
            self.writes += 1
            self.bytes_written += self.page_size
            if self.tracer.enabled:
                self.tracer.event("page.write", page=page_id,
                                  bytes=self.page_size)
            self._store_image(page_id, pickle.dumps(payload, protocol=4))
            # A full rewrite replaces the damaged image: lift the
            # quarantine.
            self.quarantined.discard(page_id)

    def free(self, page_id: int) -> None:
        with self._io_lock:
            self._pages.pop(page_id, None)
            self.quarantined.discard(page_id)

    def verify_all(self) -> List[int]:
        """Validate every page image; quarantine and return the corrupt
        ones (sorted).  Bypasses the read counters: verification is a
        recovery sweep, not simulated query I/O."""
        bad: List[int] = []
        for pid in sorted(self._page_ids()):
            if pid in self.quarantined:
                bad.append(pid)
                continue
            try:
                image = self._load_image(pid)
                if image:
                    self._deserialize(pid, image)
            except PageError:
                bad.append(pid)
        return bad

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def io_counters(self) -> dict:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "pages": self.page_count,
            "page_corruptions": self.page_corruptions,
            "pages_quarantined": len(self.quarantined),
        }

    # ---------------------------------------------------- storage internals

    def _register_page(self, pid: int) -> None:
        self._pages[pid] = b""

    def _page_exists(self, pid: int) -> bool:
        return pid in self._pages

    def _page_ids(self):
        return self._pages.keys()

    def _load_image(self, pid: int) -> bytes:
        image = self._pages.get(pid)
        if image is None:
            raise PageError(f"page {pid} does not exist")
        return image

    def _store_image(self, pid: int, image: bytes) -> None:
        self._pages[pid] = image

    def _deserialize(self, pid: int, image: bytes) -> Any:
        try:
            return pickle.loads(image)
        except Exception as exc:
            raise self._corrupt(
                pid, f"undecodable page image "
                f"({type(exc).__name__}: {exc})") from exc

    def _corrupt(self, pid: int, reason: str) -> PageError:
        """Record a corrupt page: count it, quarantine it, and build the
        typed error for the caller to raise."""
        self.page_corruptions += 1
        self.quarantined.add(pid)
        return PageError(f"page {pid}: {reason}")


# Per-page record framing for FileDiskStore:
#   magic "PG" (2) | page id u64 | payload length u32 | crc32 u32 | payload
PAGE_MAGIC = b"PG"
_PAGE_FRAME = struct.Struct(">2sQII")


class FileDiskStore(DiskStore):
    """A disc whose pages live in a real file, one framed record each.

    The file is append-only within an *epoch*: a page write appends a
    fresh record and repoints the in-memory index ``{page id →
    (offset, frame length)}``; superseded records become dead space that
    :meth:`compact_to` reclaims by copying live records into a new
    epoch file (done by every checkpoint).  Because records are never
    overwritten in place, a checkpoint taken earlier in the epoch keeps
    referencing valid offsets no matter what is appended afterwards —
    the property crash recovery relies on.

    Every read re-validates the record frame: magic, the page id echoed
    in the header, the payload length, and the payload CRC32.  Torn
    appends (crash mid-write) and flipped bits are therefore *detected*
    and reported as :class:`~repro.errors.PageError`, never returned as
    silently wrong data.

    Pickling (inside an EDB checkpoint) captures the index and epoch but
    not the file handle; :meth:`reattach` reopens the epoch file, which
    :meth:`repro.edb.store.ExternalStore.load` derives from the
    checkpoint path — the checkpoint and its sidecars relocate together.
    """

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE,
                 faults: Optional[FaultInjector] = None, epoch: int = 1):
        super().__init__(page_size)
        self._pages = {}   # unused in this subclass; kept for pickles
        self.path = path
        self.epoch = epoch
        self.faults = faults or NULL_FAULTS
        # page id -> (offset, frame length); None = allocated, unwritten
        self._index: Dict[int, Optional[Tuple[int, int]]] = {}
        self._f = open(path, "a+b", buffering=0)
        self._end = os.path.getsize(path)

    # ------------------------------------------------------------- pickling

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_f"] = None
        state["faults"] = None
        # The path is derived from the checkpoint location at load time,
        # so a checkpoint + sidecar file set can be moved wholesale.
        state["path"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self.faults = NULL_FAULTS

    def reattach(self, path: str) -> None:
        """Reopen the pages file after unpickling (or relocation)."""
        if not os.path.exists(path):
            raise PageError(f"pages file {path} does not exist")
        self.path = path
        self._f = open(path, "a+b", buffering=0)
        self._end = os.path.getsize(path)

    def _require_file(self):
        if self._f is None:
            raise PageError(
                "FileDiskStore is detached from its pages file; "
                "open the EDB via ExternalStore.load/open")
        return self._f

    # ---------------------------------------------------- storage internals

    def _register_page(self, pid: int) -> None:
        self._index[pid] = None

    def _page_exists(self, pid: int) -> bool:
        return pid in self._index

    def _page_ids(self):
        return self._index.keys()

    def _load_image(self, pid: int) -> bytes:
        if pid not in self._index:
            raise PageError(f"page {pid} does not exist")
        entry = self._index[pid]
        if entry is None:
            return b""      # allocated but never flushed: empty page
        offset, frame_len = entry
        f = self._require_file()
        f.seek(offset)
        frame = self.faults.read(f, frame_len)
        if len(frame) < _PAGE_FRAME.size:
            raise self._corrupt(pid, "short page frame (torn write?)")
        magic, stored_pid, length, crc = _PAGE_FRAME.unpack(
            frame[:_PAGE_FRAME.size])
        payload = frame[_PAGE_FRAME.size:]
        if magic != PAGE_MAGIC:
            raise self._corrupt(pid, f"bad page frame magic {magic!r}")
        if stored_pid != pid:
            raise self._corrupt(
                pid, f"frame belongs to page {stored_pid} "
                f"(directory corruption)")
        if length != len(payload):
            raise self._corrupt(
                pid, f"torn page frame ({len(payload)} of {length} "
                f"payload bytes)")
        if zlib.crc32(payload) != crc:
            raise self._corrupt(
                pid, f"CRC mismatch (stored {crc:#010x}, computed "
                f"{zlib.crc32(payload):#010x})")
        return payload

    def _store_image(self, pid: int, image: bytes) -> None:
        f = self._require_file()
        frame = _PAGE_FRAME.pack(PAGE_MAGIC, pid, len(image),
                                 zlib.crc32(image)) + image
        offset = self._end
        self.faults.crash_point("pages.append.before")
        self.faults.write(f, frame)
        self._end = offset + len(frame)
        self._index[pid] = (offset, len(frame))

    def free(self, page_id: int) -> None:
        with self._io_lock:
            self._index.pop(page_id, None)
            self.quarantined.discard(page_id)

    @property
    def page_count(self) -> int:
        return len(self._index)

    # ----------------------------------------------------------- durability

    def sync(self) -> None:
        """fsync the pages file (called at checkpoint barriers)."""
        os.fsync(self._require_file().fileno())

    def compact_to(self, new_path: str, new_epoch: int) -> None:
        """Copy live page records into a fresh epoch file and switch to
        it.  The old file is left untouched on disc (an older checkpoint
        may still reference it); the caller removes it once the new
        checkpoint is durable.  Quarantined pages keep their quarantine
        but carry no image into the new epoch — they stay typed errors,
        never silent data loss dressed as an empty page.
        """
        new_index: Dict[int, Optional[Tuple[int, int]]] = {}
        with open(new_path, "wb", buffering=0) as out:
            end = 0
            for pid in sorted(self._index):
                if pid in self.quarantined:
                    new_index[pid] = None
                    continue
                try:
                    image = self._load_image(pid)
                except PageError:
                    new_index[pid] = None   # just self-quarantined
                    continue
                if not image:
                    new_index[pid] = None
                    continue
                frame = _PAGE_FRAME.pack(PAGE_MAGIC, pid, len(image),
                                         zlib.crc32(image)) + image
                self.faults.write(out, frame)
                new_index[pid] = (end, len(frame))
                end += len(frame)
            out.flush()
            os.fsync(out.fileno())
        if self._f is not None:
            self._f.close()
        self.path = new_path
        self.epoch = new_epoch
        self._index = new_index
        self._f = open(new_path, "a+b", buffering=0)
        self._end = os.path.getsize(new_path)


class Pager:
    """Page allocation + access through a buffer pool.

    All page traffic goes through :class:`~repro.bang.buffer.BufferPool`;
    the pager is the single facade storage clients use.
    """

    def __init__(self, disk: Optional[DiskStore] = None,
                 buffer_pages: int = 128):
        from .buffer import BufferPool  # local import to avoid cycle
        self.disk = disk or DiskStore()
        self.buffer = BufferPool(self.disk, capacity=buffer_pages)

    def allocate(self, initial: Any = None) -> int:
        pid = self.disk.allocate()
        self.buffer.install(pid, initial)
        return pid

    def get(self, page_id: int) -> Any:
        return self.buffer.get(page_id)

    def pin(self, page_id: int) -> Any:
        """Page payload with its buffer frame pinned against eviction."""
        return self.buffer.pin(page_id)

    def unpin(self, page_id: int) -> None:
        self.buffer.unpin(page_id)

    @contextmanager
    def pinned(self, page_id: int):
        """Context manager: the page payload, pinned for the extent."""
        payload = self.buffer.pin(page_id)
        try:
            yield payload
        finally:
            self.buffer.unpin(page_id)

    def put(self, page_id: int, payload: Any) -> None:
        self.buffer.put(page_id, payload)

    def flush(self) -> None:
        self.buffer.flush()

    def free(self, page_id: int) -> None:
        """Release a page entirely (buffer frame + disc image)."""
        self.buffer.discard(page_id)
        self.disk.free(page_id)

    def io_counters(self) -> dict:
        counters = self.disk.io_counters()
        counters.update(self.buffer.counters())
        return counters

    def histograms(self) -> dict:
        """Duration histograms of the storage stack (buffer latch
        waits, miss stalls, write-backs); see docs/OBSERVABILITY.md."""
        return self.buffer.histograms()

    def reset_counters(self) -> None:
        self.disk.reset_counters()
        self.buffer.reset_counters()

    @property
    def tracer(self):
        return self.disk.tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        """One assignment threads the shared tracer through the whole
        storage stack (disc events + buffer eviction events)."""
        self.disk.tracer = tracer
        self.buffer.tracer = tracer

    @property
    def events(self):
        return self.buffer.events

    @events.setter
    def events(self, ring) -> None:
        """Thread a flight-recorder ring through the storage stack
        (currently: buffer eviction events)."""
        self.buffer.events = ring
