"""Schema catalog for BANG relations.

Relational systems implement type checking "by means of a separate
catalog ... which at run time is used to interpret the data values
brought from disc" (§2.2).  The catalog holds every relation's schema
(attribute names and formats) plus the live :class:`BangRelation`
handles; attribute formats follow §4: ``integer``, ``real``, ``atom``,
``tagged`` and ``term`` (lists/structures/clause references).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import CatalogError
from .pager import Pager

VALID_TYPES = ("int", "real", "atom", "tagged", "term")


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute: name + storage format."""

    name: str
    type: str = "term"

    def __post_init__(self):
        if self.type not in VALID_TYPES:
            raise CatalogError(f"unknown attribute type {self.type!r}")


@dataclass
class RelationSchema:
    """A relation's schema: name, attributes, key dimensions."""

    name: str
    attributes: List[AttributeSpec]
    key_dims: Optional[List[int]] = None  # default: every attribute

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute_index(self, name: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == name:
                return i
        raise CatalogError(f"{self.name}: no attribute {name!r}")

    def keys(self) -> List[int]:
        if self.key_dims is None:
            return list(range(self.arity))
        return list(self.key_dims)


class Catalog:
    """All relations known to one EDB instance."""

    def __init__(self, pager: Pager, bucket_capacity: int = 50):
        self.pager = pager
        self.bucket_capacity = bucket_capacity
        self._relations: Dict[str, "BangRelation"] = {}

    def create(self, schema: RelationSchema,
               bucket_capacity: Optional[int] = None) -> "BangRelation":
        from .relation import BangRelation  # late import: cycle
        if schema.name in self._relations:
            raise CatalogError(f"relation {schema.name!r} already exists")
        relation = BangRelation(
            schema, self.pager,
            bucket_capacity or self.bucket_capacity)
        self._relations[schema.name] = relation
        return relation

    def create_simple(self, name: str, attr_specs: Sequence[tuple]
                      ) -> "BangRelation":
        """Shorthand: ``create_simple('r', [('a', 'int'), ('b', 'atom')])``."""
        schema = RelationSchema(
            name, [AttributeSpec(n, t) for n, t in attr_specs])
        return self.create(schema)

    def get(self, name: str) -> "BangRelation":
        relation = self._relations.get(name)
        if relation is None:
            raise CatalogError(f"no relation {name!r}")
        return relation

    def lookup(self, name: str) -> Optional["BangRelation"]:
        return self._relations.get(name)

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise CatalogError(f"no relation {name!r}")
        del self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> List[str]:
        return sorted(self._relations)
