"""Deterministic fault injection for the durable storage stack.

A long-lived knowledge-base server (the deployment regime of the
BinProlog experience report, and this repo's ROADMAP north star) must
assume that the process dies at arbitrary instants and that discs lie.
Testing that claim by hoping for real crashes is not engineering; the
:class:`FaultInjector` makes every failure mode a *deterministic,
replayable* event:

* **fail-Nth-write** — the Nth physical write raises
  :class:`InjectedIOError` before any byte reaches the file (a full
  disc / EIO);
* **torn write** — the Nth physical write persists only a prefix of its
  bytes and then the process "dies" (:class:`InjectedCrash`) — the
  classic torn-page / torn-log-record scenario;
* **bit-flip-on-read** — the Nth physical read returns its bytes with
  one bit inverted (media bit-rot, controller corruption);
* **crash points** — named locations in the durability code
  (``wal.append.mid``, ``checkpoint.pre_rename``, ...) where an armed
  injector raises :class:`InjectedCrash`, so a test can kill the
  "process" at every interesting instant of a checkpoint or log append.

Stores accept an injector and route all physical I/O through
:meth:`FaultInjector.write` / :meth:`FaultInjector.read`, and announce
named instants via :meth:`FaultInjector.crash_point`.  The default
:data:`NULL_FAULTS` singleton compiles to plain ``f.write``/``f.read``
calls — production code pays nothing.

:class:`InjectedCrash` deliberately subclasses :class:`BaseException`:
a simulated ``kill -9`` must not be swallowed by ordinary
``except Exception`` error handling inside the storage layer.  After it
fires, the in-memory store object is dead — tests abandon it and reopen
the database from disk, exactly as a restarted process would.

The registered crash-point names are documented in
``docs/DURABILITY.md`` ("Fault-injection knobs").
"""

from __future__ import annotations

import os
from typing import IO, Dict, List, Optional, Tuple


class InjectedCrash(BaseException):
    """Simulated process death at an armed crash point or torn write.

    Subclasses :class:`BaseException` so storage-layer ``except
    Exception`` clauses cannot absorb a simulated kill.
    """


class InjectedIOError(OSError):
    """Simulated I/O failure (disc full, EIO) from ``fail-Nth-write``."""


class FaultInjector:
    """Deterministic fault plan shared by the stores of one EDB.

    All counters are cumulative across every file the injector is
    plugged into (pages file, WAL, checkpoint), which is what makes a
    plan like "fail the 7th physical write of this workload"
    deterministic and meaningful.
    """

    def __init__(self):
        self.writes_seen = 0
        self.reads_seen = 0
        self.clause_records_seen = 0
        #: crash-point name -> remaining hits to skip before firing
        self._crash_points: Dict[str, int] = {}
        #: crash-point name -> remaining hits to skip before raising
        #: an InjectedIOError (failure the process survives) instead
        #: of a simulated death
        self._io_error_points: Dict[str, int] = {}
        self._fail_write_nth: Optional[int] = None
        self._torn_write: Optional[Tuple[int, float]] = None  # (nth, keep)
        self._bitflip_read: Optional[Tuple[int, int]] = None  # (nth, bit)
        self._short_read: Optional[Tuple[int, float]] = None  # (nth, keep)
        self._fail_read_nth: Optional[int] = None
        self._clause_bitflip: Optional[Tuple[int, int]] = None  # (nth, bit)
        #: every fault that actually fired, in order (test assertions)
        self.fired: List[str] = []

    # ------------------------------------------------------------- arming

    def arm_crash_point(self, name: str, skip: int = 0) -> "FaultInjector":
        """Raise :class:`InjectedCrash` the (skip+1)-th time *name* is
        announced via :meth:`crash_point`."""
        self._crash_points[name] = skip
        return self

    def arm_io_error_point(self, name: str, skip: int = 0) -> "FaultInjector":
        """Raise :class:`InjectedIOError` the (skip+1)-th time *name* is
        announced — an I/O failure (disc full, EIO) at a named instant
        that the process *survives*, unlike :meth:`arm_crash_point`."""
        self._io_error_points[name] = skip
        return self

    def arm_fail_write(self, nth: int) -> "FaultInjector":
        """The *nth* physical write (1-based, across all files) raises
        :class:`InjectedIOError` without writing anything."""
        self._fail_write_nth = nth
        return self

    def arm_torn_write(self, nth: int, keep: float = 0.5) -> "FaultInjector":
        """The *nth* physical write persists only ``keep`` (fraction) of
        its bytes, then raises :class:`InjectedCrash`."""
        self._torn_write = (nth, keep)
        return self

    def arm_bitflip_read(self, nth: int, bit: int = 3) -> "FaultInjector":
        """The *nth* physical read returns its data with *bit* (absolute
        bit index into the buffer) inverted."""
        self._bitflip_read = (nth, bit)
        return self

    def arm_short_read(self, nth: int, keep: float = 0.5
                       ) -> "FaultInjector":
        """The *nth* physical read returns only ``keep`` (fraction) of
        its bytes — what a replica tailer racing an in-progress append
        observes at the log's tail.  A correct tailer treats it as a
        torn tail: wait and retry, never truncate, never quarantine."""
        self._short_read = (nth, keep)
        return self

    def arm_fail_read(self, nth: int) -> "FaultInjector":
        """The *nth* physical read raises :class:`InjectedIOError` — a
        transient stream break (NFS hiccup, EIO) the reader survives
        and must retry with backoff."""
        self._fail_read_nth = nth
        return self

    def arm_clause_bitflip(self, nth: int, bit: int = 0
                           ) -> "FaultInjector":
        """The *nth* compiled clause record the dynamic loader decodes
        (1-based, across every rule fetch) comes back with *bit*
        inverted in its first instruction's opcode — in-storage bit rot
        of a compiled clause blob, below the page CRC's radar (e.g. a
        stale checksum recomputed over rotten bytes).  The loader's
        verifier must catch and quarantine it (docs/ANALYSIS.md)."""
        self._clause_bitflip = (nth, bit)
        return self

    # -------------------------------------------------------------- hooks

    def crash_point(self, name: str) -> None:
        """Announce a named instant; dies (or errors) here if armed."""
        remaining = self._io_error_points.get(name)
        if remaining is not None:
            if remaining > 0:
                self._io_error_points[name] = remaining - 1
            else:
                del self._io_error_points[name]
                self.fired.append(f"io_error@{name}")
                raise InjectedIOError(
                    f"injected I/O failure at {name!r}")
        remaining = self._crash_points.get(name)
        if remaining is None:
            return
        if remaining > 0:
            self._crash_points[name] = remaining - 1
            return
        del self._crash_points[name]
        self.fired.append(name)
        raise InjectedCrash(f"crash point {name!r}")

    def write(self, f: IO[bytes], data: bytes) -> None:
        """Physical write of *data* to *f*, subject to the fault plan."""
        self.writes_seen += 1
        n = self.writes_seen
        if self._fail_write_nth == n:
            self._fail_write_nth = None
            self.fired.append(f"fail_write#{n}")
            raise InjectedIOError(f"injected write failure (write #{n})")
        if self._torn_write is not None and self._torn_write[0] == n:
            _, keep = self._torn_write
            self._torn_write = None
            kept = max(0, min(len(data), int(len(data) * keep)))
            f.write(data[:kept])
            self.fired.append(f"torn_write#{n}")
            raise InjectedCrash(
                f"torn write (write #{n}: {kept}/{len(data)} bytes)")
        f.write(data)

    def read(self, f: IO[bytes], size: int) -> bytes:
        """Physical read of *size* bytes from *f*, subject to the plan."""
        if (self._fail_read_nth is not None
                and self._fail_read_nth == self.reads_seen + 1):
            self.reads_seen += 1
            n = self.reads_seen
            self._fail_read_nth = None
            self.fired.append(f"fail_read#{n}")
            raise InjectedIOError(f"injected read failure (read #{n})")
        data = f.read(size)
        self.reads_seen += 1
        n = self.reads_seen
        if self._short_read is not None and self._short_read[0] == n:
            _, keep = self._short_read
            self._short_read = None
            kept = max(0, min(len(data), int(len(data) * keep)))
            # Rewind so a retry sees the unconsumed suffix again, like
            # a real short read against a file still being appended.
            f.seek(-(len(data) - kept), os.SEEK_CUR)
            data = data[:kept]
            self.fired.append(f"short_read#{n}")
        if self._bitflip_read is not None and self._bitflip_read[0] == n:
            _, bit = self._bitflip_read
            self._bitflip_read = None
            if data:
                bit %= len(data) * 8
                flipped = bytearray(data)
                flipped[bit // 8] ^= 1 << (bit % 8)
                data = bytes(flipped)
                self.fired.append(f"bitflip_read#{n}")
        return data

    def clause_record(self, code: list) -> list:
        """One decoded compiled-clause record passing through the
        loader, subject to the fault plan."""
        self.clause_records_seen += 1
        n = self.clause_records_seen
        if self._clause_bitflip is not None and self._clause_bitflip[0] == n:
            _, bit = self._clause_bitflip
            self._clause_bitflip = None
            self.fired.append(f"clause_bitflip#{n}")
            return _flip_opcode_bit(code, bit)
        return code

    @property
    def armed(self) -> bool:
        return bool(self._crash_points or self._io_error_points
                    or self._fail_write_nth is not None
                    or self._torn_write is not None
                    or self._bitflip_read is not None
                    or self._short_read is not None
                    or self._fail_read_nth is not None
                    or self._clause_bitflip is not None)


def _flip_opcode_bit(code: list, bit: int) -> list:
    """Return *code* with one bit of the first instruction's opcode
    string inverted — a corruption :func:`repro.edb.codec.decode_code`
    passes through verbatim (unknown opcodes transcode as-is), so only
    the verifier stands between it and the emulator."""
    if not code or not isinstance(code[0], tuple) or not code[0]:
        return [("corrupt_record",)]
    instr = code[0]
    raw = bytearray(str(instr[0]).encode("utf-8", "replace") or b"?")
    bit %= len(raw) * 8
    raw[bit // 8] ^= 1 << (bit % 8)
    flipped = raw.decode("utf-8", "replace")
    out = list(code)
    out[0] = (flipped,) + instr[1:]
    return out


class NullFaultInjector(FaultInjector):
    """The default injector: nothing ever fires; arming is an error."""

    def crash_point(self, name: str) -> None:
        pass

    def clause_record(self, code: list) -> list:
        return code

    def write(self, f: IO[bytes], data: bytes) -> None:
        f.write(data)

    def read(self, f: IO[bytes], size: int) -> bytes:
        return f.read(size)

    def _refuse(self, *args, **kwargs):
        raise ValueError(
            "NULL_FAULTS cannot be armed; construct a FaultInjector")

    arm_crash_point = _refuse
    arm_io_error_point = _refuse
    arm_fail_write = _refuse
    arm_torn_write = _refuse
    arm_bitflip_read = _refuse
    arm_short_read = _refuse
    arm_fail_read = _refuse
    arm_clause_bitflip = _refuse


NULL_FAULTS = NullFaultInjector()
