"""Write-ahead log for the durable EDB.

Between checkpoints, every committed EDB mutation (``store_rules``,
``assert_clause``, ``retract_clause``, ...) appends one *redo record* to
this log; :meth:`repro.edb.store.ExternalStore.open` replays the
committed records on top of the last checkpoint to reconstruct the
pre-crash state.  The log knows nothing about record *contents* — it is
a byte-payload journal with crash-safe framing:

.. code-block:: text

    frame := magic "WA" (2) | lsn u64 | length u32 | crc32 u32 | payload

All integers are big-endian.  A record is **committed** iff its frame is
complete and its CRC matches; :meth:`scan` stops at the first torn or
corrupt frame (a crash mid-append) and reports the byte offset of the
last good frame so recovery can truncate the garbage tail.  LSNs are
sequential from 0 within one log generation; a gap or repeat is treated
the same as corruption (the log cannot be trusted past it).

Appends are written through an unbuffered file descriptor and fsynced
before :meth:`append` returns — when the caller regains control, the
record is durable.  All physical I/O goes through the pluggable
:class:`~repro.bang.faults.FaultInjector` so tests can tear frames and
kill the process mid-append deterministically.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import WalError
from ..obs.registry import Histogram
from .faults import NULL_FAULTS, FaultInjector

WAL_MAGIC = b"WA"
_FRAME = struct.Struct(">2sQII")  # magic, lsn, payload length, crc32

#: Refuse to trust absurd lengths (a corrupt frame could otherwise ask
#: recovery to allocate gigabytes).
MAX_RECORD_BYTES = 64 * 1024 * 1024


class WriteAheadLog:
    """Append-only, CRC-framed record log over one file."""

    def __init__(self, path: str, faults: Optional[FaultInjector] = None):
        self.path = path
        self.faults = faults or NULL_FAULTS
        self._f = open(path, "a+b", buffering=0)
        self._end = os.path.getsize(path)
        self.next_lsn = 0          # fixed up by scan() / truncate()
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.truncations = 0
        #: wall time of each append (writes + fsync) and of the fsync
        #: alone — the fsync dominates, and its tail is what a stalled
        #: mutator is actually waiting on
        self.append_hist = Histogram()
        self.fsync_hist = Histogram()

    def _require_file(self):
        """The open log file, or a typed error after :meth:`close`
        (e.g. a handle retained across a save-as that re-homed the
        store's WAL)."""
        if self._f is None:
            raise WalError(
                f"{self.path}: write-ahead log is closed (detached file)")
        return self._f

    # ----------------------------------------------------------------- write

    def append(self, payload: bytes) -> int:
        """Durably append one record; returns its LSN.

        The frame is written in two physical writes with the
        ``wal.append.mid`` crash point between them, so a fault plan can
        leave a genuinely torn frame on disc.  The file is fsynced
        before returning (``wal.append.synced`` fires after the sync).
        """
        f = self._require_file()
        if len(payload) > MAX_RECORD_BYTES:
            raise WalError(
                f"{self.path}: record of {len(payload)} bytes exceeds "
                f"MAX_RECORD_BYTES ({MAX_RECORD_BYTES})")
        lsn = self.next_lsn
        frame = _FRAME.pack(WAL_MAGIC, lsn, len(payload),
                            zlib.crc32(payload)) + payload
        started = time.perf_counter()
        self.faults.crash_point("wal.append.before")
        split = _FRAME.size // 2
        self.faults.write(f, frame[:split])
        self.faults.crash_point("wal.append.mid")
        self.faults.write(f, frame[split:])
        sync_started = time.perf_counter()
        os.fsync(f.fileno())
        finished = time.perf_counter()
        # Appends are serialized by the store's write lock, so the
        # histogram updates need no further synchronisation.
        self.fsync_hist.observe((finished - sync_started) * 1000.0)
        self.append_hist.observe((finished - started) * 1000.0)
        self.syncs += 1
        self.faults.crash_point("wal.append.synced")
        self._end += len(frame)
        self.next_lsn = lsn + 1
        self.records_appended += 1
        self.bytes_appended += len(frame)
        return lsn

    # ------------------------------------------------------------------ read

    def scan(self) -> Tuple[List[bytes], bool, int]:
        """All committed record payloads, in append order.

        Returns ``(payloads, torn_tail, good_end)`` where *torn_tail*
        is true when trailing bytes after the last committed frame were
        found (crash mid-append) and *good_end* is the file offset just
        past the last committed frame.  Also positions :attr:`next_lsn`
        after the last committed record, so subsequent appends continue
        the sequence.
        """
        f = self._require_file()
        payloads: List[bytes] = []
        offset = 0
        torn = False
        size = os.path.getsize(self.path)
        f.seek(0)
        expected_lsn = 0
        while offset + _FRAME.size <= size:
            header = self.faults.read(f, _FRAME.size)
            if len(header) < _FRAME.size:
                torn = True
                break
            magic, lsn, length, crc = _FRAME.unpack(header)
            if (magic != WAL_MAGIC or lsn != expected_lsn
                    or length > MAX_RECORD_BYTES
                    or offset + _FRAME.size + length > size):
                torn = True
                break
            payload = self.faults.read(f, length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            payloads.append(payload)
            offset += _FRAME.size + length
            expected_lsn += 1
        if not torn and offset != size:
            torn = True  # trailing garbage shorter than a header
        self.next_lsn = expected_lsn
        return payloads, torn, offset

    # ----------------------------------------------------------- maintenance

    def truncate_to(self, offset: int) -> None:
        """Physically drop everything past *offset* (torn-tail repair),
        so later appends never sit behind unreadable garbage."""
        f = self._require_file()
        f.truncate(offset)
        os.fsync(f.fileno())
        self.syncs += 1
        self._end = offset

    def truncate(self) -> None:
        """Reset the log to empty (after a successful checkpoint)."""
        f = self._require_file()
        f.truncate(0)
        os.fsync(f.fileno())
        self.syncs += 1
        self._end = 0
        self.next_lsn = 0
        self.truncations += 1

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def counters(self) -> dict:
        return {
            "wal_records_appended": self.records_appended,
            "wal_bytes_appended": self.bytes_appended,
            "wal_truncations": self.truncations,
        }

    def histograms(self) -> Dict[str, Histogram]:
        return {
            "wal_append_ms": self.append_hist,
            "wal_fsync_ms": self.fsync_hist,
        }
