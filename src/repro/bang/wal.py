"""Write-ahead log for the durable EDB.

Between checkpoints, every committed EDB mutation (``store_rules``,
``assert_clause``, ``retract_clause``, ...) appends one *redo record* to
this log; :meth:`repro.edb.store.ExternalStore.open` replays the
committed records on top of the last checkpoint to reconstruct the
pre-crash state.  The log knows nothing about record *contents* — it is
a byte-payload journal with crash-safe framing:

.. code-block:: text

    frame := magic "WA" (2) | lsn u64 | length u32 | crc32 u32 | payload

All integers are big-endian.  A record is **committed** iff its frame is
complete and its CRC matches; :meth:`scan` stops at the first torn or
corrupt frame (a crash mid-append) and reports the byte offset of the
last good frame so recovery can truncate the garbage tail.  LSNs are
sequential from 0 within one log generation; a gap or repeat is treated
the same as corruption (the log cannot be trusted past it).

Appends are written through an unbuffered file descriptor and fsynced
before :meth:`append` returns — when the caller regains control, the
record is durable.  All physical I/O goes through the pluggable
:class:`~repro.bang.faults.FaultInjector` so tests can tear frames and
kill the process mid-append deterministically.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import WalError
from ..obs.registry import Histogram
from .faults import NULL_FAULTS, FaultInjector

WAL_MAGIC = b"WA"
_FRAME = struct.Struct(">2sQII")  # magic, lsn, payload length, crc32

#: Refuse to trust absurd lengths (a corrupt frame could otherwise ask
#: recovery to allocate gigabytes).
MAX_RECORD_BYTES = 64 * 1024 * 1024


def read_frame(f, faults: FaultInjector, offset: int, size: int,
               expected_lsn: int) -> Tuple[str, bytes]:
    """Read the frame starting at *offset* from a file positioned there.

    Returns ``(status, payload)``:

    * ``"ok"`` — a committed frame; *payload* holds its bytes.
    * ``"torn"`` — the frame extends past *size* (an append in
      progress, or a crash mid-append).  Recovery truncates here; a
      live tailer must wait and retry, **never** truncate.
    * ``"corrupt"`` — a complete frame whose magic, LSN sequence or
      CRC is wrong.  The log cannot be trusted past this point.

    The distinction matters because the writer emits each frame in two
    physical writes (header split, then the rest) followed by fsync: a
    racing reader can only ever observe a short prefix of an
    in-progress frame, so complete-but-CRC-bad bytes are genuine
    corruption, not a race.
    """
    if offset + _FRAME.size > size:
        return "torn", b""
    header = faults.read(f, _FRAME.size)
    if len(header) < _FRAME.size:
        return "torn", b""
    magic, lsn, length, crc = _FRAME.unpack(header)
    if (magic != WAL_MAGIC or lsn != expected_lsn
            or length > MAX_RECORD_BYTES):
        return "corrupt", b""
    if offset + _FRAME.size + length > size:
        return "torn", b""
    payload = faults.read(f, length)
    if len(payload) < length:
        return "torn", b""
    if zlib.crc32(payload) != crc:
        return "corrupt", b""
    return "ok", payload


class WalScan:
    """Incremental iterator over the committed frames of a WAL file.

    Yields one payload at a time so recovery and replica tailing stay
    memory-bounded regardless of log size.  After exhaustion:

    * :attr:`offset` — file offset just past the last committed frame
      (the *good end*; recovery truncates trailing garbage to here),
    * :attr:`next_lsn` — the LSN the next committed frame would carry,
    * :attr:`status` — ``"ok"`` (clean end of log), ``"torn"`` or
      ``"corrupt"`` (see :func:`read_frame`),
    * :attr:`torn` — true when any trailing bytes follow the committed
      prefix (either torn or corrupt end).

    The file *size* is sampled once at construction: frames appended
    after the cursor was created are not visited (the tailer simply
    creates a fresh cursor per poll).  Every step re-seeks to its own
    offset, so interleaved appends through the same handle cannot
    derail the cursor.
    """

    def __init__(self, f, faults: FaultInjector, size: int,
                 offset: int = 0, expected_lsn: int = 0):
        self._f = f
        self._faults = faults
        self.size = size
        self.offset = offset
        self.next_lsn = expected_lsn
        self.status = "ok"
        self._done = False

    @property
    def torn(self) -> bool:
        return self.status != "ok"

    def __iter__(self) -> "WalScan":
        return self

    def __next__(self) -> bytes:
        if self._done:
            raise StopIteration
        if self.offset >= self.size:
            self._done = True
            raise StopIteration
        self._f.seek(self.offset)
        status, payload = read_frame(self._f, self._faults, self.offset,
                                     self.size, self.next_lsn)
        if status != "ok":
            self.status = status
            self._done = True
            raise StopIteration
        self.offset += _FRAME.size + len(payload)
        self.next_lsn += 1
        return payload


class WriteAheadLog:
    """Append-only, CRC-framed record log over one file."""

    def __init__(self, path: str, faults: Optional[FaultInjector] = None):
        self.path = path
        self.faults = faults or NULL_FAULTS
        self._f = open(path, "a+b", buffering=0)
        self._end = os.path.getsize(path)
        self.next_lsn = 0          # fixed up by scan() / truncate()
        self.records_appended = 0
        self.bytes_appended = 0
        self.syncs = 0
        self.truncations = 0
        #: wall time of each append (writes + fsync) and of the fsync
        #: alone — the fsync dominates, and its tail is what a stalled
        #: mutator is actually waiting on
        self.append_hist = Histogram()
        self.fsync_hist = Histogram()

    def _require_file(self):
        """The open log file, or a typed error after :meth:`close`
        (e.g. a handle retained across a save-as that re-homed the
        store's WAL)."""
        if self._f is None:
            raise WalError(
                f"{self.path}: write-ahead log is closed (detached file)")
        return self._f

    # ----------------------------------------------------------------- write

    def append(self, payload: bytes) -> int:
        """Durably append one record; returns its LSN.

        The frame is written in two physical writes with the
        ``wal.append.mid`` crash point between them, so a fault plan can
        leave a genuinely torn frame on disc.  The file is fsynced
        before returning (``wal.append.synced`` fires after the sync).
        """
        f = self._require_file()
        if len(payload) > MAX_RECORD_BYTES:
            raise WalError(
                f"{self.path}: record of {len(payload)} bytes exceeds "
                f"MAX_RECORD_BYTES ({MAX_RECORD_BYTES})")
        lsn = self.next_lsn
        frame = _FRAME.pack(WAL_MAGIC, lsn, len(payload),
                            zlib.crc32(payload)) + payload
        started = time.perf_counter()
        self.faults.crash_point("wal.append.before")
        split = _FRAME.size // 2
        self.faults.write(f, frame[:split])
        self.faults.crash_point("wal.append.mid")
        self.faults.write(f, frame[split:])
        sync_started = time.perf_counter()
        os.fsync(f.fileno())
        finished = time.perf_counter()
        # Appends are serialized by the store's write lock, so the
        # histogram updates need no further synchronisation.
        self.fsync_hist.observe((finished - sync_started) * 1000.0)
        self.append_hist.observe((finished - started) * 1000.0)
        self.syncs += 1
        self.faults.crash_point("wal.append.synced")
        self._end += len(frame)
        self.next_lsn = lsn + 1
        self.records_appended += 1
        self.bytes_appended += len(frame)
        return lsn

    # ------------------------------------------------------------------ read

    def scan_from(self, offset: int = 0,
                  expected_lsn: int = 0) -> WalScan:
        """Incremental committed-frame cursor starting at *offset*.

        Recovery iterates it instead of materialising every payload at
        once; a replica tailer resumes from its last good end by
        passing the offset/LSN pair it remembered.  The cursor borrows
        this log's file handle, so consume it before interleaving other
        scans.  Unlike :meth:`scan` it does **not** reposition
        :attr:`next_lsn` — the caller decides what the cursor's end
        means.
        """
        f = self._require_file()
        size = os.path.getsize(self.path)
        return WalScan(f, self.faults, size, offset, expected_lsn)

    def scan(self) -> Tuple[List[bytes], bool, int]:
        """All committed record payloads, in append order.

        Thin wrapper over :meth:`scan_from`: returns ``(payloads,
        torn_tail, good_end)`` where *torn_tail* is true when trailing
        bytes after the last committed frame were found (crash
        mid-append) and *good_end* is the file offset just past the
        last committed frame.  Also positions :attr:`next_lsn` after
        the last committed record, so subsequent appends continue the
        sequence.
        """
        cursor = self.scan_from(0)
        payloads = list(cursor)
        self.next_lsn = cursor.next_lsn
        return payloads, cursor.torn, cursor.offset

    # ----------------------------------------------------------- maintenance

    def truncate_to(self, offset: int) -> None:
        """Physically drop everything past *offset* (torn-tail repair),
        so later appends never sit behind unreadable garbage."""
        f = self._require_file()
        f.truncate(offset)
        os.fsync(f.fileno())
        self.syncs += 1
        self._end = offset

    def truncate(self) -> None:
        """Reset the log to empty (after a successful checkpoint)."""
        f = self._require_file()
        f.truncate(0)
        os.fsync(f.fileno())
        self.syncs += 1
        self._end = 0
        self.next_lsn = 0
        self.truncations += 1

    def close(self) -> None:
        if self._f is not None:
            self._f.close()
            self._f = None

    def counters(self) -> dict:
        return {
            "wal_records_appended": self.records_appended,
            "wal_bytes_appended": self.bytes_appended,
            "wal_truncations": self.truncations,
        }

    def histograms(self) -> Dict[str, Histogram]:
        return {
            "wal_append_ms": self.append_hist,
            "wal_fsync_ms": self.fsync_hist,
        }
