"""A BANG-style storage engine (substitute for Freeston's BANG file).

The paper stores facts, rules and compiled clause code in BANG relations
(§4) — a multidimensional dynamic file giving clustered partial-match
access on any combination of attributes, which is what pre-unification
filters on.  This package provides:

* :mod:`repro.bang.pager` — a paged "disc" with full read/write
  accounting (the unit the paper's Table 2b counts);
* :mod:`repro.bang.buffer` — an LRU buffer pool implementing the
  block-at-a-time transfer assumption of §2.2;
* :mod:`repro.bang.grid` — a recursive binary-partition multidimensional
  index over order-preserving key transforms (BANG's nested-region
  refinements are approximated by median splits; see DESIGN.md);
* :mod:`repro.bang.relation` / :mod:`repro.bang.catalog` — typed
  relations with exact and range partial-match retrieval.
"""

from .buffer import BufferPool
from .catalog import AttributeSpec, Catalog, RelationSchema
from .grid import BangGrid, Box, full_box
from .pager import DiskStore, Pager
from .relation import BangRelation

__all__ = [
    "DiskStore",
    "Pager",
    "BufferPool",
    "BangGrid",
    "Box",
    "full_box",
    "Catalog",
    "RelationSchema",
    "AttributeSpec",
    "BangRelation",
]
