"""BANG-style multidimensional partition index.

Freeston's BANG file [13, 14] partitions a multidimensional key space
into nested block regions so that tuples are *clustered* by the values of
all key attributes simultaneously, giving efficient partial-match and
range retrieval on any attribute combination — which is exactly the
access pattern Educe*'s pre-unification needs (filter stored clauses by
whichever head arguments the query binds, §4).

We implement the load-bearing behaviour with a recursive binary
partition (k-d style, cyclic dimensions, median splits for balance under
skew): every leaf is one disc page; a query visits exactly the leaves
whose region intersects the query box.  BANG's distinctive nested
("hole-y") regions improve worst-case occupancy but do not change the
complexity class of partial-match search; DESIGN.md records the
substitution.

Keys are vectors in ``[0, 1)^k`` produced by the order-preserving
transforms in :mod:`repro.bang.relation`.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from .pager import Pager

Box = Tuple[Tuple[float, float], ...]  # inclusive lo, exclusive hi per dim


def full_box(ndims: int) -> Box:
    return tuple((0.0, 1.0) for _ in range(ndims))


def point_box(assignment: dict, ndims: int) -> Box:
    """Box constraining the given dims to points, others unconstrained."""
    return tuple(
        (assignment[d], assignment[d]) if d in assignment else (0.0, 1.0)
        for d in range(ndims)
    )


def _intersects(region: Box, query: Box) -> bool:
    """Region intervals are half-open [lo, hi); query intervals are
    closed [lo, hi] (a point query is lo == hi)."""
    for (rlo, rhi), (qlo, qhi) in zip(region, query):
        if qhi < rlo or qlo >= rhi:
            return False
    return True


def key_in_box(key: Sequence[float], query: Box) -> bool:
    """Closed-interval membership per dimension."""
    for v, (qlo, qhi) in zip(key, query):
        if v < qlo or v > qhi:
            return False
    return True


class _Node:
    __slots__ = ("region", "dim", "split", "left", "right", "page_id",
                 "count")

    def __init__(self, region: Box, page_id: Optional[int]):
        self.region = region
        self.dim: Optional[int] = None
        self.split: Optional[float] = None
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.page_id = page_id
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return self.page_id is not None


class BangGrid:
    """The index proper: a partition tree whose leaves are disc pages.

    Each page payload is a list of ``(key_vector, record)`` pairs.
    """

    def __init__(self, ndims: int, pager: Pager, bucket_capacity: int = 50):
        if ndims < 1:
            raise ValueError("grid needs at least one dimension")
        self.ndims = ndims
        self.pager = pager
        self.bucket_capacity = bucket_capacity
        self.root = _Node(full_box(ndims), pager.allocate([]))
        self.size = 0
        self.leaf_count = 1
        self.splits = 0
        self.merges = 0

    # ----------------------------------------------------------------- write

    def insert(self, key: Sequence[float], record: Any) -> None:
        if len(key) != self.ndims:
            raise ValueError(f"key arity {len(key)} != {self.ndims}")
        leaf = self._descend(self.root, key)
        entries = list(self.pager.get(leaf.page_id) or [])
        entries.append((tuple(key), record))
        if len(entries) > self.bucket_capacity:
            self._split_leaf(leaf, entries)
        else:
            self.pager.put(leaf.page_id, entries)
            leaf.count = len(entries)
        self.size += 1

    def delete(self, key: Sequence[float], match) -> int:
        """Delete entries under *key* for which ``match(record)``; returns
        the number removed.  Every ``compact_every`` deletions, underfull
        sibling leaves are merged and their pages freed (dynamic-file
        space reclamation, the analogue of the dictionary's "space should
        not be wasted" principle)."""
        leaf = self._descend(self.root, key)
        entries = list(self.pager.get(leaf.page_id) or [])
        kept = [(k, r) for (k, r) in entries
                if not (k == tuple(key) and match(r))]
        removed = len(entries) - len(kept)
        if removed:
            self.pager.put(leaf.page_id, kept)
            leaf.count = len(kept)
            self.size -= removed
            self._deletes_since_compact += removed
            if self._deletes_since_compact >= self.compact_every:
                self.compact()
        return removed

    # ------------------------------------------------------------ compaction

    compact_every = 256
    _deletes_since_compact = 0

    def compact(self) -> int:
        """Merge sibling leaves whose combined occupancy fits one bucket
        and splice out empty leaves; freed pages are released back to the
        pager.  Runs to a fixpoint.  Returns the number of merges."""
        total = 0
        while True:
            merges = self._compact_node(self.root)
            if merges == 0:
                break
            total += merges
        self.merges += total
        self.leaf_count -= total
        self._deletes_since_compact = 0
        return total

    def _compact_node(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        merges = self._compact_node(node.left)   # type: ignore[arg-type]
        merges += self._compact_node(node.right)  # type: ignore[arg-type]
        left, right = node.left, node.right
        assert left is not None and right is not None
        if (left.is_leaf and right.is_leaf
                and left.count + right.count <= self.bucket_capacity):
            # Merge two underfull sibling leaves into one bucket.
            entries = list(self.pager.get(left.page_id) or [])
            entries += list(self.pager.get(right.page_id) or [])
            self.pager.put(left.page_id, entries)
            self.pager.free(right.page_id)
            self._become_leaf(node, left.page_id, len(entries))
            return merges + 1
        for empty, survivor in ((left, right), (right, left)):
            if empty.is_leaf and empty.count == 0:
                # Splice out an empty leaf: the node adopts the surviving
                # child wholesale (the region widens to the union, which
                # only ever admits *more* queries — still sound).
                self.pager.free(empty.page_id)
                self._adopt(node, survivor)
                return merges + 1
        return merges

    @staticmethod
    def _become_leaf(node: _Node, page_id: int, count: int) -> None:
        node.page_id = page_id
        node.count = count
        node.dim = None
        node.split = None
        node.left = None
        node.right = None

    @staticmethod
    def _adopt(node: _Node, child: _Node) -> None:
        node.page_id = child.page_id
        node.count = child.count
        node.dim = child.dim
        node.split = child.split
        node.left = child.left
        node.right = child.right

    def _descend(self, node: _Node, key: Sequence[float]) -> _Node:
        while not node.is_leaf:
            assert node.dim is not None and node.split is not None
            if key[node.dim] < node.split:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return node

    def _split_leaf(self, leaf: _Node, entries: list) -> None:
        """Median split on the cyclic next dimension (BANG balance
        approximation).  Falls back to other dimensions when all keys
        coincide on the preferred one."""
        region = leaf.region
        for attempt in range(self.ndims):
            dim = (self._region_depth(region) + attempt) % self.ndims
            values = sorted(k[dim] for k, _ in entries)
            split = values[len(values) // 2]
            lo, hi = region[dim]
            if not (lo < split < hi):
                continue
            left_entries = [(k, r) for k, r in entries if k[dim] < split]
            right_entries = [(k, r) for k, r in entries if k[dim] >= split]
            if not left_entries or not right_entries:
                continue
            left_region = _replace_dim(region, dim, (lo, split))
            right_region = _replace_dim(region, dim, (split, hi))
            left = _Node(left_region, leaf.page_id)
            right = _Node(right_region, self.pager.allocate([]))
            self.pager.put(left.page_id, left_entries)
            self.pager.put(right.page_id, right_entries)
            left.count = len(left_entries)
            right.count = len(right_entries)
            leaf.page_id = None
            leaf.dim = dim
            leaf.split = split
            leaf.left = left
            leaf.right = right
            self.leaf_count += 1
            self.splits += 1
            return
        # Un-splittable (duplicate keys): oversized bucket, keep going.
        self.pager.put(leaf.page_id, entries)
        leaf.count = len(entries)

    @staticmethod
    def _region_depth(region: Box) -> int:
        """How many halvings produced this region (for cyclic dims)."""
        depth = 0
        for lo, hi in region:
            width = hi - lo
            while width < 0.999999:
                depth += 1
                width *= 2
        return depth

    # ------------------------------------------------------------------ read

    def query(self, box: Box) -> Iterator[Any]:
        """Yield records whose key lies inside *box* (point dims use
        ``lo == hi``).  Visits only intersecting leaves; every leaf visit
        is one page access."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not _intersects(node.region, box):
                continue
            if node.is_leaf:
                # Pin the leaf frame while its entries stream out: the
                # block-at-a-time contract of §2.2 — concurrent readers
                # must not have the page evicted mid-scan.
                entries = self.pager.pin(node.page_id) or []
                try:
                    for key, record in entries:
                        if key_in_box(key, box):
                            yield record
                finally:
                    self.pager.unpin(node.page_id)
            else:
                stack.append(node.left)   # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]

    def scan(self) -> Iterator[Any]:
        """Full scan in leaf order (clustered)."""
        yield from self.query(full_box(self.ndims))

    def leaves_for(self, box: Box) -> int:
        """Number of leaves a query for *box* would touch (planner aid)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not _intersects(node.region, box):
                continue
            if node.is_leaf:
                count += 1
            else:
                stack.append(node.left)   # type: ignore[arg-type]
                stack.append(node.right)  # type: ignore[arg-type]
        return count

    def stats(self) -> dict:
        return {
            "size": self.size,
            "leaves": self.leaf_count,
            "splits": self.splits,
            "merges": self.merges,
            "bucket_capacity": self.bucket_capacity,
        }


def _replace_dim(region: Box, dim: int, bounds: Tuple[float, float]) -> Box:
    return tuple(
        bounds if i == dim else r for i, r in enumerate(region)
    )
