"""LRU buffer pool.

§2.2 of the paper: "in the time it takes to read a block of data
containing several tuples, the previous block can be processed" — the
relational engine's whole strategy assumes block-at-a-time transfer with
buffering.  The pool counts hits/misses/evictions so the benchmarks can
report buffer behaviour (Table 2b's "buffer read/write" row).

Concurrency (docs/CONCURRENCY.md)
---------------------------------

The pool is shared by every worker of a :class:`repro.service`
query service, so it is a proper latched buffer manager:

* one :class:`~repro.locks.Latch` protects the frame table, the dirty
  set, the pin table and the counters;
* **per-frame pin counts** — a reader that is iterating a page's
  entries pins the frame (:meth:`pin`/:meth:`unpin`); the LRU eviction
  path skips pinned frames, and when *every* frame is pinned the pool
  grows past capacity (counted in ``buffer_pin_overflows``) rather
  than deadlocking or evicting a page out from under a reader;
* **miss de-duplication** — concurrent misses on the same page
  coalesce: one thread reads the disc, the others wait on an in-flight
  event and then take the admitted frame.  The latch is *released*
  around the disc read, so simulated (or real) disc latency overlaps
  across threads instead of serialising behind the latch;
* **write-backs outside the latch** — dirty-victim eviction and
  :meth:`flush` snapshot what must be written under the latch and
  perform the disc writes after releasing it, so a checkpoint flush
  (real fsync-backed writes under ``FileDiskStore``) never stalls
  every reader's page access.  An in-flight write-back is marked in
  the same in-flight table as a miss read, so a concurrent fetch of
  the victim waits for the write to land instead of reading a stale
  disc image.

Pin balance is a correctness invariant: after a quiescent run,
``buffer_pins == buffer_unpins`` and the ``buffer_pinned`` gauge is 0 —
the differential concurrency suite asserts exactly that.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict

from ..errors import PageError
from ..locks import Latch
from ..obs.events import NULL_EVENTS
from ..obs.registry import Histogram
from ..obs.tracing import NULL_TRACER
from .pager import DiskStore


class BufferPool:
    """Fixed-capacity latched LRU cache of page payloads over a DiskStore."""

    def __init__(self, disk: DiskStore, capacity: int = 128):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.tracer = NULL_TRACER  # threaded in via Pager.tracer
        self.events = NULL_EVENTS  # threaded in via Pager.events
        self._latch = Latch("buffer")
        #: wall time a miss spends in the (latch-released) disc read —
        #: the stall concurrent workers overlap; and the duration of
        #: each dirty write-back (eviction or flush)
        self.miss_stall_hist = Histogram()
        self.writeback_hist = Histogram()
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self._dirty: set = set()
        #: page id → pin count (only pages with a live pin appear)
        self._pins: Dict[int, int] = {}
        #: page id → event set once an in-flight disc *read* is
        #: admitted or an in-flight eviction *write-back* has landed;
        #: fetches and installs of such a page wait on the event
        self._loading: Dict[int, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.pins_taken = 0
        self.pins_released = 0
        self.pin_overflows = 0

    # ------------------------------------------------------------------ API

    def get(self, page_id: int) -> Any:
        """Page payload, reading from disc on a miss."""
        return self._fetch(page_id, pin=False)

    def pin(self, page_id: int) -> Any:
        """Page payload with its frame pinned against eviction.

        Every ``pin`` must be balanced by exactly one :meth:`unpin`; the
        ``buffer_pinned`` gauge is the number of outstanding pins.
        """
        return self._fetch(page_id, pin=True)

    def unpin(self, page_id: int) -> None:
        with self._latch:
            count = self._pins.get(page_id)
            if count is None:
                raise PageError(
                    f"page {page_id}: unpin without a matching pin")
            if count == 1:
                del self._pins[page_id]
            else:
                self._pins[page_id] = count - 1
            self.pins_released += 1

    def put(self, page_id: int, payload: Any) -> None:
        """Install a new payload for the page and mark it dirty."""
        self._install_dirty(page_id, payload)

    def install(self, page_id: int, payload: Any) -> None:
        """Admit a freshly allocated page (dirty, no disc read)."""
        self._install_dirty(page_id, payload)

    def _install_dirty(self, page_id: int, payload: Any) -> None:
        while True:
            with self._latch:
                if page_id not in self._loading:
                    if page_id in self._frames:
                        self._frames[page_id] = payload
                        self._frames.move_to_end(page_id)
                        writebacks = []
                    else:
                        writebacks = self._admit_locked(page_id, payload)
                    self._dirty.add(page_id)
                    break
                # An in-flight read or write-back of this page: wait it
                # out so our payload cannot be clobbered by an older
                # image landing afterwards.
                event = self._loading[page_id]
            event.wait()
        self._complete_writebacks(writebacks)

    def flush(self) -> None:
        """Write back every dirty frame.

        Pages are written in ascending page-id order so the physical
        write sequence is deterministic — fault-injection plans
        ("fail the Nth write", "tear the Nth write") stay reproducible
        run over run instead of depending on set iteration order.  The
        dirty set is snapshotted under the latch but the disc writes
        happen outside it, so a checkpoint's fsync-backed flush does
        not stall concurrent page access; a page dirtied again while
        the flush runs simply stays dirty for the next flush.
        """
        with self._latch:
            pending = [(pid, self._frames.get(pid))
                       for pid in sorted(self._dirty)]
            self._dirty.clear()
        for i, (page_id, payload) in enumerate(pending):
            started = time.perf_counter()
            try:
                self.disk.write(page_id, payload)
            except BaseException:
                # Failed and not-yet-attempted pages stay dirty so a
                # later flush (or eviction) retries them.
                with self._latch:
                    self._dirty.update(pid for pid, _ in pending[i:])
                raise
            with self._latch:
                self.writebacks += 1
                self.writeback_hist.observe(
                    (time.perf_counter() - started) * 1000.0)

    def discard(self, page_id: int) -> None:
        """Drop a page from the pool without write-back (page freed).

        An outstanding pin entry survives the discard: the pin tracks
        the *reader's* obligation to unpin, and pin balance must hold
        even when a writer frees the page mid-scan.
        """
        with self._latch:
            self._frames.pop(page_id, None)
            self._dirty.discard(page_id)

    # Like DiskStore, never persist the live session's tracer; latch,
    # pins and in-flight reads are runtime state and restart empty.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["tracer"] = None
        state["events"] = None    # the ring holds locks; runtime state
        state["_pins"] = {}
        state["_loading"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.tracer = NULL_TRACER
        self.events = NULL_EVENTS
        # Pre-concurrency pickles lack the latch/pin fields.
        if getattr(self, "_latch", None) is None:
            self._latch = Latch("buffer")
        self.__dict__.setdefault("_pins", {})
        self.__dict__.setdefault("_loading", {})
        for key in ("pins_taken", "pins_released", "pin_overflows"):
            self.__dict__.setdefault(key, 0)
        # Pre-telemetry pickles lack the duration histograms.
        self.__dict__.setdefault("miss_stall_hist", Histogram())
        self.__dict__.setdefault("writeback_hist", Histogram())

    # ------------------------------------------------------------ internals

    def _fetch(self, page_id: int, pin: bool) -> Any:
        while True:
            with self._latch:
                if page_id in self._frames:
                    self.hits += 1
                    self._frames.move_to_end(page_id)
                    if pin:
                        self._pin_locked(page_id)
                    return self._frames[page_id]
                event = self._loading.get(page_id)
                if event is None:
                    # This thread performs the read; others wait on it.
                    event = threading.Event()
                    self._loading[page_id] = event
                    self.misses += 1
                    break
            event.wait()
        # Latch released: the disc read (and any simulated latency)
        # overlaps with other threads' work.
        started = time.perf_counter()
        try:
            payload = self.disk.read(page_id)
        except BaseException:
            with self._latch:
                del self._loading[page_id]
                event.set()
            raise
        stalled_ms = (time.perf_counter() - started) * 1000.0
        with self._latch:
            self.miss_stall_hist.observe(stalled_ms)
            del self._loading[page_id]
            event.set()
            writebacks = []
            if page_id in self._frames:
                # A put/install raced ahead of the read; its payload is
                # the newer one.
                payload = self._frames[page_id]
                self._frames.move_to_end(page_id)
            else:
                writebacks = self._admit_locked(page_id, payload)
            if pin:
                self._pin_locked(page_id)
        self._complete_writebacks(writebacks)
        return payload

    def _pin_locked(self, page_id: int) -> None:
        self._pins[page_id] = self._pins.get(page_id, 0) + 1
        self.pins_taken += 1

    def _admit_locked(self, page_id: int, payload: Any) -> list:
        """Admit a frame, evicting LRU victims as needed.  Called with
        the latch held.  Dirty victims are *not* written here: each is
        registered in the in-flight table (so concurrent fetches wait
        instead of reading the stale disc image) and returned; the
        caller MUST pass the list to :meth:`_complete_writebacks` after
        releasing the latch."""
        writebacks = []
        while len(self._frames) >= self.capacity:
            victim = next((pid for pid in self._frames
                           if pid not in self._pins), None)
            if victim is None:
                # Every frame is pinned: grow past capacity rather than
                # stall or steal a pinned frame.
                self.pin_overflows += 1
                break
            victim_payload = self._frames.pop(victim)
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.event("page.evict", page=victim,
                                  dirty=victim in self._dirty)
            if self.events.enabled:
                self.events.record("page.evict", page=victim,
                                   dirty=victim in self._dirty)
            if victim in self._dirty:
                self._dirty.discard(victim)
                marker = threading.Event()
                self._loading[victim] = marker
                writebacks.append((victim, victim_payload, marker))
        self._frames[page_id] = payload
        return writebacks

    def _complete_writebacks(self, writebacks: list) -> None:
        """Perform deferred dirty-victim writes outside the latch."""
        error = None
        for victim, payload, marker in writebacks:
            started = time.perf_counter()
            try:
                self.disk.write(victim, payload)
            except BaseException as exc:
                with self._latch:
                    # The evicted payload was the only copy: re-admit
                    # the frame dirty rather than lose the page.  (The
                    # pool may briefly exceed capacity, like a pin
                    # overflow.)
                    self._frames[victim] = payload
                    self._dirty.add(victim)
                    self._loading.pop(victim, None)
                    marker.set()
                if error is None:
                    error = exc
                continue
            with self._latch:
                self.writebacks += 1
                self.writeback_hist.observe(
                    (time.perf_counter() - started) * 1000.0)
                self._loading.pop(victim, None)
                marker.set()
        if error is not None:
            raise error

    # ------------------------------------------------------------- counters

    def counters(self) -> dict:
        counters = {
            "buffer_hits": self.hits,
            "buffer_misses": self.misses,
            "buffer_evictions": self.evictions,
            "buffer_writebacks": self.writebacks,
            "buffer_resident": len(self._frames),
            "buffer_pins": self.pins_taken,
            "buffer_unpins": self.pins_released,
            "buffer_pinned": sum(self._pins.values()),
            "buffer_pin_overflows": self.pin_overflows,
        }
        counters.update(self._latch.counters())
        return counters

    def histograms(self) -> Dict[str, Histogram]:
        hists = {
            "buffer_miss_stall_ms": self.miss_stall_hist,
            "buffer_writeback_ms": self.writeback_hist,
        }
        hists.update(self._latch.histograms())
        return hists

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
