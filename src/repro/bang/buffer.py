"""LRU buffer pool.

§2.2 of the paper: "in the time it takes to read a block of data
containing several tuples, the previous block can be processed" — the
relational engine's whole strategy assumes block-at-a-time transfer with
buffering.  The pool counts hits/misses/evictions so the benchmarks can
report buffer behaviour (Table 2b's "buffer read/write" row).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..obs.tracing import NULL_TRACER
from .pager import DiskStore


class BufferPool:
    """Fixed-capacity LRU cache of page payloads over a DiskStore."""

    def __init__(self, disk: DiskStore, capacity: int = 128):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.tracer = NULL_TRACER  # threaded in via Pager.tracer
        self._frames: "OrderedDict[int, Any]" = OrderedDict()
        self._dirty: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # ------------------------------------------------------------------ API

    def get(self, page_id: int) -> Any:
        """Page payload, reading from disc on a miss."""
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        payload = self.disk.read(page_id)
        self._admit(page_id, payload)
        return payload

    def put(self, page_id: int, payload: Any) -> None:
        """Install a new payload for the page and mark it dirty."""
        if page_id in self._frames:
            self._frames[page_id] = payload
            self._frames.move_to_end(page_id)
        else:
            self._admit(page_id, payload)
        self._dirty.add(page_id)

    def install(self, page_id: int, payload: Any) -> None:
        """Admit a freshly allocated page (dirty, no disc read)."""
        self._admit(page_id, payload)
        self._dirty.add(page_id)

    def flush(self) -> None:
        """Write back every dirty frame.

        Pages are written in ascending page-id order so the physical
        write sequence is deterministic — fault-injection plans
        ("fail the Nth write", "tear the Nth write") stay reproducible
        run over run instead of depending on set iteration order.
        """
        for page_id in sorted(self._dirty):
            self.disk.write(page_id, self._frames.get(page_id))
            self.writebacks += 1
        self._dirty.clear()

    def discard(self, page_id: int) -> None:
        """Drop a page from the pool without write-back (page freed)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    # Like DiskStore, never persist the live session's tracer.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["tracer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.tracer = NULL_TRACER

    # ------------------------------------------------------------ internals

    def _admit(self, page_id: int, payload: Any) -> None:
        while len(self._frames) >= self.capacity:
            victim, victim_payload = self._frames.popitem(last=False)
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.event("page.evict", page=victim,
                                  dirty=victim in self._dirty)
            if victim in self._dirty:
                self.disk.write(victim, victim_payload)
                self.writebacks += 1
                self._dirty.discard(victim)
        self._frames[page_id] = payload

    # ------------------------------------------------------------- counters

    def counters(self) -> dict:
        return {
            "buffer_hits": self.hits,
            "buffer_misses": self.misses,
            "buffer_evictions": self.evictions,
            "buffer_writebacks": self.writebacks,
            "buffer_resident": len(self._frames),
        }

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
