"""Surface representation of Prolog terms.

This is the *source level* term model used by the reader, the compiler and
the resolution interpreter.  The WAM emulator has its own tagged-cell heap
representation (see :mod:`repro.wam.machine`); conversion between the two
happens at the query boundary.

Representation choices
----------------------
* Python ``int`` and ``float`` are used directly as Prolog integers and
  floats — they are immutable and hash well, and it keeps arithmetic code
  free of wrapping/unwrapping noise.
* :class:`Atom` instances are interned: ``Atom('foo') is Atom('foo')``.
  This gives constant-time equality, mirroring the dictionary-identifier
  technique of the paper (§3.3.1) at the surface level.
* :class:`Var` is a mutable binding cell used by the interpreter baseline.
  Compiled execution never binds these directly.
* :class:`Struct` is a compound term; lists are ``Struct('.', (H, T))``
  chains terminated by ``Atom('[]')``, as in classic Prolog.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from .errors import TypeError_

Term = Union["Atom", int, float, "Var", "Struct"]


class Atom:
    """An interned Prolog atom.

    ``Atom(name)`` returns the unique instance for *name*; identity
    comparison is therefore valid for equality.
    """

    __slots__ = ("name",)
    _interned: dict = {}

    def __new__(cls, name: str) -> "Atom":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        atom = object.__new__(cls)
        atom.name = name
        cls._interned[name] = atom
        return atom

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.name)

    # Identity equality is inherited from object and is correct because of
    # interning.

    def __reduce__(self):
        return (Atom, (self.name,))


NIL = Atom("[]")
TRUE = Atom("true")
FAIL = Atom("fail")
EMPTY_BLOCK = Atom("{}")


class Var:
    """A logic variable with an optional print name.

    ``ref`` is ``None`` while unbound, otherwise the term this variable is
    bound to.  Binding/unbinding is managed by the interpreter's trail.
    """

    __slots__ = ("name", "ref")
    _counter = 0

    def __init__(self, name: Optional[str] = None):
        if name is None:
            Var._counter += 1
            name = f"_G{Var._counter}"
        self.name = name
        self.ref: Optional[Term] = None

    def __repr__(self) -> str:
        if self.ref is None:
            return f"Var({self.name})"
        return f"Var({self.name}={self.ref!r})"


class Struct:
    """A compound term ``name(args...)`` with at least one argument."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Term, ...]):
        if not args:
            raise TypeError_("compound term requires arguments", name)
        self.name = name
        self.args = tuple(args)

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator ``(name, arity)``."""
        return (self.name, len(self.args))

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"Struct({self.name!r}, ({inner}))"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Struct)
            and self.name == other.name
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((self.name, self.args))


def deref(term: Term) -> Term:
    """Follow variable bindings until reaching an unbound var or non-var."""
    while isinstance(term, Var) and term.ref is not None:
        term = term.ref
    return term


def make_struct(name: str, *args: Term) -> Term:
    """Build ``name(args...)``, collapsing to an :class:`Atom` at arity 0."""
    if not args:
        return Atom(name)
    return Struct(name, args)


def make_list(items: Iterable[Term], tail: Term = NIL) -> Term:
    """Build a Prolog list term from a Python iterable."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(".", (item, result))
    return result


def list_to_python(term: Term) -> List[Term]:
    """Convert a proper Prolog list to a Python list.

    Raises :class:`TypeError_` if *term* is not a proper list.
    """
    out: List[Term] = []
    term = deref(term)
    while True:
        if term is NIL:
            return out
        if isinstance(term, Struct) and term.name == "." and term.arity == 2:
            out.append(deref(term.args[0]))
            term = deref(term.args[1])
        else:
            raise TypeError_("list", term)


def is_proper_list(term: Term) -> bool:
    """True iff *term* is a nil-terminated list with no unbound tail."""
    term = deref(term)
    while isinstance(term, Struct) and term.name == "." and term.arity == 2:
        term = deref(term.args[1])
    return term is NIL


def is_callable(term: Term) -> bool:
    """True for atoms and compound terms (things that can be goals)."""
    term = deref(term)
    return isinstance(term, (Atom, Struct))


def indicator_of(term: Term) -> Tuple[str, int]:
    """Predicate indicator of a callable term."""
    term = deref(term)
    if isinstance(term, Atom):
        return (term.name, 0)
    if isinstance(term, Struct):
        return (term.name, term.arity)
    raise TypeError_("callable", term)


def term_variables(term: Term) -> List[Var]:
    """All distinct unbound variables in *term*, in first-occurrence order."""
    seen: dict = {}
    stack = [term]
    order: List[Var] = []
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            if id(t) not in seen:
                seen[id(t)] = t
                order.append(t)
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return order


def rename_term(term: Term, mapping: Optional[dict] = None) -> Term:
    """Structure-preserving copy with fresh variables (``copy_term/2``)."""
    if mapping is None:
        mapping = {}

    def walk(t: Term) -> Term:
        t = deref(t)
        if isinstance(t, Var):
            fresh = mapping.get(id(t))
            if fresh is None:
                fresh = Var(t.name)
                mapping[id(t)] = fresh
            return fresh
        if isinstance(t, Struct):
            return Struct(t.name, tuple(walk(a) for a in t.args))
        return t

    return walk(term)


def resolve_term(term: Term) -> Term:
    """Replace bound variables by their values, keeping unbound vars."""
    term = deref(term)
    if isinstance(term, Struct):
        return Struct(term.name, tuple(resolve_term(a) for a in term.args))
    return term


_TYPE_ORDER = {"var": 0, "float": 1, "int": 1, "atom": 2, "struct": 3}


def _type_rank(term: Term) -> int:
    if isinstance(term, Var):
        return 0
    if isinstance(term, (int, float)) and not isinstance(term, bool):
        return 1
    if isinstance(term, Atom):
        return 2
    return 3


def compare_terms(a: Term, b: Term) -> int:
    """Standard order of terms: Var < Number < Atom < Compound.

    Returns -1, 0 or 1.  Numbers compare by value (with int before float on
    a tie, per ISO); compound terms by arity, then name, then args.
    Iterative (explicit work stack) so long lists do not overflow the
    Python call stack.
    """
    stack = [(a, b)]
    while stack:
        a, b = stack.pop()
        a = deref(a)
        b = deref(b)
        ra, rb = _type_rank(a), _type_rank(b)
        if ra != rb:
            return -1 if ra < rb else 1
        if ra == 0:  # both vars: order by identity (stable within a run)
            ia, ib = id(a), id(b)
            if ia != ib:
                return -1 if ia < ib else 1
            continue
        if ra == 1:  # numbers
            if a == b:
                if isinstance(a, float) and isinstance(b, int):
                    return -1
                if isinstance(a, int) and isinstance(b, float):
                    return 1
                continue
            return -1 if a < b else 1
        if ra == 2:  # atoms
            if a is b:
                continue
            return -1 if a.name < b.name else 1
        # compound: arity, then name, then args left-to-right
        assert isinstance(a, Struct) and isinstance(b, Struct)
        if a.arity != b.arity:
            return -1 if a.arity < b.arity else 1
        if a.name != b.name:
            return -1 if a.name < b.name else 1
        if a.args is not b.args:
            stack.extend(zip(reversed(a.args), reversed(b.args)))
    return 0


def terms_equal(a: Term, b: Term) -> bool:
    """Structural equality after dereferencing (``==/2``)."""
    return compare_terms(a, b) == 0


def iter_subterms(term: Term) -> Iterator[Term]:
    """Depth-first pre-order iteration over all subterms (dereferenced)."""
    stack = [term]
    while stack:
        t = deref(stack.pop())
        yield t
        if isinstance(t, Struct):
            stack.extend(reversed(t.args))


def ground(term: Term) -> bool:
    """True iff *term* contains no unbound variables."""
    for sub in iter_subterms(term):
        if isinstance(sub, Var):
            return False
    return True
