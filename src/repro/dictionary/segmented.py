"""Segmented closed-hash dictionary for atoms and functors (paper §3.3.1).

Each *segment* is a fixed-capacity closed (open-addressing) hash table.
A functor's unique identifier is ``segment_index * capacity + slot`` — a
"concatenation of the segment number and the index", exactly as the paper
describes.  Once allocated, an identifier never moves: compiled code in
the EDB embeds these identifiers, so relocation would invalidate stored
code (principle 4).

Growth policy (from the paper):

* a fresh dictionary has one segment;
* when **all** live segments exceed the high-water mark (default 70 %),
  a new segment is allocated and chained;
* the segment with the lowest occupancy is the **hot segment**; all new
  insertions go there, gradually balancing occupancy and keeping probe
  chains short;
* deleted slots become tombstones that are reused by later insertions
  (garbage collection without relocation, principles 3+4);
* a segment whose live occupancy drops to zero is reclaimed wholesale
  (its storage freed, the segment index kept reserved).

Lookups must probe every live segment because an entry may have been
inserted while any segment was hot; segments are probed hot-first since
recent entries are the most likely targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import ResourceError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a(name: str, arity: int = 0) -> int:
    """Deterministic 64-bit FNV-1a hash of (name, arity).

    Stable across runs and platforms — required because the *external*
    dictionary stores these hash values on disk (§4) and pre-unification
    compares them against freshly computed ones.
    """
    h = _FNV_OFFSET
    for byte in name.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    h = ((h ^ (arity & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((arity >> 8) & 0xFF)) * _FNV_PRIME) & _MASK64
    return h


@dataclass
class DictionaryStats:
    """Operation counters, used by the dictionary benchmarks."""

    lookups: int = 0
    insertions: int = 0
    deletions: int = 0
    probes: int = 0
    collisions: int = 0
    segments_allocated: int = 0
    segments_reclaimed: int = 0

    def snapshot(self) -> dict:
        return {
            "lookups": self.lookups,
            "insertions": self.insertions,
            "deletions": self.deletions,
            "probes": self.probes,
            "collisions": self.collisions,
            "segments_allocated": self.segments_allocated,
            "segments_reclaimed": self.segments_reclaimed,
        }


_EMPTY = None
_TOMBSTONE = ("<deleted>", -1, 0)


class _Segment:
    """One closed-hash segment with linear probing."""

    __slots__ = ("capacity", "slots", "live", "tombstones")

    def __init__(self, capacity: int):
        self.capacity = capacity
        # slot := None | _TOMBSTONE | (name, arity, hash)
        self.slots: List[Optional[Tuple[str, int, int]]] = [_EMPTY] * capacity
        self.live = 0
        self.tombstones = 0

    @property
    def occupancy(self) -> float:
        return self.live / self.capacity

    def find(self, name: str, arity: int, h: int, stats: DictionaryStats
             ) -> Optional[int]:
        """Slot index of (name, arity) in this segment, or None."""
        cap = self.capacity
        idx = h % cap
        for step in range(cap):
            slot = self.slots[idx]
            stats.probes += 1
            if slot is _EMPTY:
                return None
            if slot is not _TOMBSTONE and slot[0] == name and slot[1] == arity:
                return idx
            idx = (idx + 1) % cap
        return None

    def insert(self, name: str, arity: int, h: int, stats: DictionaryStats
               ) -> Optional[int]:
        """Insert, reusing tombstones; return the slot or None if full."""
        cap = self.capacity
        idx = h % cap
        first_tombstone = -1
        for step in range(cap):
            slot = self.slots[idx]
            stats.probes += 1
            if slot is _EMPTY:
                target = first_tombstone if first_tombstone >= 0 else idx
                if step > 0 or first_tombstone >= 0:
                    stats.collisions += 1
                self._fill(target, (name, arity, h))
                return target
            if slot is _TOMBSTONE and first_tombstone < 0:
                first_tombstone = idx
            idx = (idx + 1) % cap
        if first_tombstone >= 0:
            stats.collisions += 1
            self._fill(first_tombstone, (name, arity, h))
            return first_tombstone
        return None

    def _fill(self, idx: int, entry: Tuple[str, int, int]) -> None:
        if self.slots[idx] is _TOMBSTONE:
            self.tombstones -= 1
        self.slots[idx] = entry
        self.live += 1

    def delete(self, idx: int) -> None:
        self.slots[idx] = _TOMBSTONE
        self.live -= 1
        self.tombstones += 1


class SegmentedDictionary:
    """The internal dictionary: interning, lookup, deletion, reclamation.

    Identifiers returned by :meth:`intern` are dense non-negative ints
    suitable for embedding in WAM code.
    """

    def __init__(self, segment_capacity: int = 32000,
                 high_water: float = 0.70):
        if segment_capacity < 8:
            raise ResourceError("segment capacity too small")
        self.segment_capacity = segment_capacity
        self.high_water = high_water
        self.stats = DictionaryStats()
        self._segments: List[Optional[_Segment]] = [_Segment(segment_capacity)]
        self.stats.segments_allocated = 1

    # ------------------------------------------------------------- interning

    def intern(self, name: str, arity: int = 0) -> int:
        """Return the stable unique identifier for (name, arity),
        inserting it if absent."""
        h = fnv1a(name, arity)
        found = self._find(name, arity, h)
        if found is not None:
            return found
        return self._insert(name, arity, h)

    def lookup(self, name: str, arity: int = 0) -> Optional[int]:
        """Identifier for (name, arity) if present, else None."""
        return self._find(name, arity, fnv1a(name, arity))

    def _find(self, name: str, arity: int, h: int) -> Optional[int]:
        self.stats.lookups += 1
        # Probe hot-first: recently inserted entries live in low-occupancy
        # segments, and lookups of fresh functors dominate compilation.
        for seg_index in self._probe_order():
            seg = self._segments[seg_index]
            assert seg is not None
            slot = seg.find(name, arity, h, self.stats)
            if slot is not None:
                return seg_index * self.segment_capacity + slot
        return None

    def _probe_order(self) -> List[int]:
        live = [
            (seg.occupancy, i)
            for i, seg in enumerate(self._segments)
            if seg is not None
        ]
        live.sort()
        return [i for _, i in live]

    def _insert(self, name: str, arity: int, h: int) -> int:
        self.stats.insertions += 1
        seg_index = self._hot_segment()
        seg = self._segments[seg_index]
        assert seg is not None
        slot = seg.insert(name, arity, h, self.stats)
        if slot is None:  # hot segment unexpectedly full: force growth
            seg_index = self._allocate_segment()
            seg = self._segments[seg_index]
            assert seg is not None
            slot = seg.insert(name, arity, h, self.stats)
            if slot is None:
                raise ResourceError("dictionary segment overflow")
        return seg_index * self.segment_capacity + slot

    def _hot_segment(self) -> int:
        """Lowest-occupancy live segment; allocate when all are past the
        high-water mark."""
        best: Optional[int] = None
        best_occ = 2.0
        all_high = True
        for i, seg in enumerate(self._segments):
            if seg is None:
                continue
            occ = seg.occupancy
            if occ < best_occ:
                best_occ = occ
                best = i
            if occ < self.high_water:
                all_high = False
        if best is None or all_high:
            return self._allocate_segment()
        return best

    def _allocate_segment(self) -> int:
        # Reuse a reclaimed segment index if one exists so identifiers stay
        # small; otherwise chain a new segment.
        for i, seg in enumerate(self._segments):
            if seg is None:
                self._segments[i] = _Segment(self.segment_capacity)
                self.stats.segments_allocated += 1
                return i
        self._segments.append(_Segment(self.segment_capacity))
        self.stats.segments_allocated += 1
        return len(self._segments) - 1

    # ------------------------------------------------------------- accessors

    def _locate(self, ident: int) -> Tuple[_Segment, int]:
        seg_index, slot = divmod(ident, self.segment_capacity)
        if not 0 <= seg_index < len(self._segments):
            raise ResourceError(f"dictionary identifier {ident} out of range")
        seg = self._segments[seg_index]
        if seg is None or seg.slots[slot] in (_EMPTY, _TOMBSTONE):
            raise ResourceError(f"dictionary identifier {ident} is dead")
        return seg, slot

    def name(self, ident: int) -> str:
        seg, slot = self._locate(ident)
        return seg.slots[slot][0]  # type: ignore[index]

    def arity(self, ident: int) -> int:
        seg, slot = self._locate(ident)
        return seg.slots[slot][1]  # type: ignore[index]

    def functor(self, ident: int) -> Tuple[str, int]:
        seg, slot = self._locate(ident)
        entry = seg.slots[slot]
        return (entry[0], entry[1])  # type: ignore[index]

    def hash_of(self, ident: int) -> int:
        seg, slot = self._locate(ident)
        return seg.slots[slot][2]  # type: ignore[index]

    def is_live(self, ident: int) -> bool:
        try:
            self._locate(ident)
            return True
        except ResourceError:
            return False

    # -------------------------------------------------------------- deletion

    def delete(self, ident: int) -> None:
        """Tombstone an entry; its slot becomes reusable but other
        identifiers are untouched (principles 3+4)."""
        seg, slot = self._locate(ident)
        seg.delete(slot)
        self.stats.deletions += 1
        if seg.live == 0:
            self._reclaim_empty_segments()

    def _reclaim_empty_segments(self) -> None:
        # Never reclaim the last remaining segment.
        live_count = sum(1 for s in self._segments if s is not None)
        for i, seg in enumerate(self._segments):
            if seg is not None and seg.live == 0 and live_count > 1:
                self._segments[i] = None
                live_count -= 1
                self.stats.segments_reclaimed += 1

    # ------------------------------------------------------------ inspection

    def __len__(self) -> int:
        return sum(seg.live for seg in self._segments if seg is not None)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return self.lookup(key[0], key[1]) is not None

    def entries(self) -> Iterator[Tuple[int, str, int]]:
        """Yield (identifier, name, arity) for every live entry."""
        for seg_index, seg in enumerate(self._segments):
            if seg is None:
                continue
            base = seg_index * self.segment_capacity
            for slot, entry in enumerate(seg.slots):
                if entry is not _EMPTY and entry is not _TOMBSTONE:
                    yield (base + slot, entry[0], entry[1])

    def segment_occupancies(self) -> List[float]:
        """Occupancy per live segment (reclaimed ones reported as 0.0)."""
        return [
            seg.occupancy if seg is not None else 0.0
            for seg in self._segments
        ]

    @property
    def segment_count(self) -> int:
        return sum(1 for seg in self._segments if seg is not None)
