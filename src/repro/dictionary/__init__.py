"""The Educe* dictionary subsystem (paper §3.3.1).

Atoms and functors are interned into a *segmented closed-hash* dictionary
that hands out stable unique identifiers — the identifiers alone are used
for unification, which the paper notes is "several orders of magnitude
faster than using string comparisons".

The design reconciles the paper's eight (partially conflicting)
principles:

* unique, never-relocated identifiers (compiled code embeds them);
* extensibility without rehashing (segments are chained on demand);
* garbage collection by slot reuse, not relocation;
* fast exact-match search, short probe chains.
"""

from .segmented import DictionaryStats, SegmentedDictionary, fnv1a
from .string_heap import StringHeap

__all__ = ["SegmentedDictionary", "DictionaryStats", "StringHeap", "fnv1a"]
