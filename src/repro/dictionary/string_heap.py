"""General heap for functor/atom name strings (paper §3.3.2).

The paper's "general heap" stores the character strings making up atom
and functor names, maintains free lists of blocks for reuse, and is
garbage collected when EDB-loaded code is erased.  We model it as a flat
byte arena with size-class free lists so the GC benchmarks can observe
real allocation/recycling behaviour (high-water mark, bytes recycled).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ResourceError

_ALIGN = 8


def _block_size(length: int) -> int:
    """Round a payload length up to the allocation granularity."""
    return max(_ALIGN, (length + _ALIGN - 1) // _ALIGN * _ALIGN)


class StringHeap:
    """Byte arena with free-list recycling and allocation accounting."""

    def __init__(self, initial_capacity: int = 1 << 16):
        self._arena = bytearray(initial_capacity)
        self._top = 0  # bump pointer
        # offset -> (block_size, payload_length) for live blocks
        self._live: Dict[int, Tuple[int, int]] = {}
        # size class -> list of free offsets
        self._free: Dict[int, List[int]] = {}
        self.allocations = 0
        self.frees = 0
        self.bytes_allocated = 0
        self.bytes_recycled = 0

    # ------------------------------------------------------------ allocation

    def store(self, text: str) -> int:
        """Store *text*; return its heap offset (the block handle)."""
        payload = text.encode("utf-8")
        size = _block_size(len(payload))
        offset = self._take_free(size)
        if offset is None:
            offset = self._bump(size)
        self._arena[offset:offset + len(payload)] = payload
        self._live[offset] = (size, len(payload))
        self.allocations += 1
        self.bytes_allocated += size
        return offset

    def _take_free(self, size: int) -> Optional[int]:
        bucket = self._free.get(size)
        if bucket:
            offset = bucket.pop()
            self.bytes_recycled += size
            return offset
        return None

    def _bump(self, size: int) -> int:
        while self._top + size > len(self._arena):
            self._grow()
        offset = self._top
        self._top += size
        return offset

    def _grow(self) -> None:
        if len(self._arena) >= (1 << 31):
            raise ResourceError("string heap exhausted")
        self._arena.extend(bytes(len(self._arena)))

    # ---------------------------------------------------------------- access

    def fetch(self, offset: int) -> str:
        """The string stored at *offset*."""
        entry = self._live.get(offset)
        if entry is None:
            raise ResourceError(f"string heap offset {offset} is not live")
        _, length = entry
        return self._arena[offset:offset + length].decode("utf-8")

    def free(self, offset: int) -> None:
        """Release a block onto its size-class free list."""
        entry = self._live.pop(offset, None)
        if entry is None:
            raise ResourceError(f"double free at string heap offset {offset}")
        size, _ = entry
        self._free.setdefault(size, []).append(offset)
        self.frees += 1

    # ------------------------------------------------------------ accounting

    @property
    def live_blocks(self) -> int:
        return len(self._live)

    @property
    def free_blocks(self) -> int:
        return sum(len(v) for v in self._free.values())

    @property
    def high_water(self) -> int:
        """Bytes ever claimed from the arena (the bump pointer)."""
        return self._top

    def stats(self) -> dict:
        return {
            "allocations": self.allocations,
            "frees": self.frees,
            "bytes_allocated": self.bytes_allocated,
            "bytes_recycled": self.bytes_recycled,
            "live_blocks": self.live_blocks,
            "free_blocks": self.free_blocks,
            "high_water": self.high_water,
        }
