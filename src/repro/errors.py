"""Exception hierarchy for the Educe* reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type.  The sub-hierarchy mirrors the ISO Prolog
error terms where a natural mapping exists (type_error, existence_error,
instantiation_error, ...), plus storage-level errors for the BANG/EDB side.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PrologError(ReproError):
    """Base class for errors raised during parsing, compilation or execution
    of logic programs."""


class SyntaxError_(PrologError):
    """Raised by the tokenizer/reader on malformed Prolog text.

    Carries the source position for diagnostics.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class InstantiationError(PrologError):
    """An argument was an unbound variable where a bound term is required."""


class TypeError_(PrologError):
    """An argument has the wrong type (ISO ``type_error``)."""

    def __init__(self, expected: str, culprit: object):
        super().__init__(f"type_error({expected}, {culprit!r})")
        self.expected = expected
        self.culprit = culprit


class ExistenceError(PrologError):
    """A referenced procedure, relation or object does not exist."""

    def __init__(self, kind: str, name: str):
        super().__init__(f"existence_error({kind}, {name})")
        self.kind = kind
        self.name = name


class PermissionError_(PrologError):
    """An operation is not permitted on the target (e.g. redefining a
    built-in predicate, modifying a frozen procedure)."""


class EvaluationError(PrologError):
    """Arithmetic evaluation failed (zero divisor, undefined function...)."""


class RepresentationError(PrologError):
    """A value cannot be represented (e.g. functor arity overflow in the
    code serialisation format)."""


class ResourceError(PrologError):
    """A machine resource was exhausted (heap, trail, dictionary...)."""


class MachineError(PrologError):
    """Internal inconsistency detected by the WAM emulator; indicates a
    compiler or loader bug rather than a user error."""


class VerifyError(PrologError):
    """A WAM code block failed static verification (:mod:`repro.analysis`).

    Raised by the compiler/assembler self-checks and by the dynamic
    loader when code fetched from the EDB is rejected *before* the
    emulator runs it.  Carries the rule id (``docs/ANALYSIS.md``), the
    instruction offset and a human-readable reason.
    """

    def __init__(self, rule: str, offset: int, reason: str,
                 procedure: str = ""):
        self.rule = rule
        self.offset = offset
        self.reason = reason
        self.procedure = procedure
        where = f" in {procedure}" if procedure else ""
        super().__init__(
            f"verify_error({rule}, offset {offset}{where}): {reason}")


class StorageError(ReproError):
    """Base class for storage-level (BANG / pager / EDB) errors."""


class PageError(StorageError):
    """A page id is out of range or a page image is corrupt."""


class CatalogError(StorageError):
    """Schema catalog inconsistency (duplicate relation, unknown attribute,
    arity mismatch...)."""


class CodecError(StorageError):
    """The relative-address code serialisation is malformed."""


class WalError(StorageError):
    """The write-ahead log refused an operation (oversized record,
    detached file).  Corrupt/torn frames are *not* errors: recovery
    treats them as the uncommitted tail and truncates them."""


class ReplicationError(ReproError):
    """Base class for WAL-shipping replication (:mod:`repro.replication`)
    errors."""


class ReadOnlyStore(ReplicationError):
    """A mutation reached a store frozen for replication (a follower
    applying a primary's WAL stream).  Followers accept mutations only
    through the replication apply path; everything else must go to the
    primary — or wait for this store to be promoted."""

    def __init__(self, reason: str):
        super().__init__(f"store is read-only ({reason})")
        self.reason = reason


class PromotionError(ReplicationError):
    """A replica could not be promoted to primary (still attached, or
    its catch-up drain did not complete)."""


class LockOrderError(ReproError):
    """A lock acquisition that would deadlock by construction (e.g. a
    read→write upgrade on the same
    :class:`~repro.locks.ReadWriteLock`)."""


class ServiceError(ReproError):
    """Base class for concurrent query service (:mod:`repro.service`)
    errors."""


class ServiceClosed(ServiceError):
    """A submission arrived after the service began shutting down."""


class ServiceSaturated(ServiceError):
    """The bounded work queue could not admit a submission."""


class ReadOnlyService(ServiceError):
    """A mutation was submitted to a read-only :class:`QueryService`
    (one serving a replica).  Writes go to the primary."""


class ReplicaLagExceeded(ServiceError):
    """No replica satisfies a read's staleness bound.

    Raised by :meth:`repro.replication.ReplicaSet.submit_read` when
    every attached replica lags the primary by more than the caller's
    ``max_lag`` (in mutation epochs).  Carries the freshest lag seen so
    callers can widen the bound or wait.
    """

    def __init__(self, max_lag: int, best_lag: object):
        super().__init__(
            f"no replica within max_lag={max_lag} epochs "
            f"(freshest observed lag: {best_lag})")
        self.max_lag = max_lag
        self.best_lag = best_lag


class QueryInterrupted(ServiceError):
    """A running query was cancelled or exceeded its deadline.

    ``reason`` is ``"cancelled"`` or ``"deadline"``.
    """

    def __init__(self, reason: str):
        super().__init__(f"query interrupted ({reason})")
        self.reason = reason
