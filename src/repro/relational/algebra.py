"""Relational algebra plan nodes and the pull-based executor.

Plans are trees of small dataclass-style nodes; :func:`execute` turns a
plan into an iterator of tuples.  Access-path nodes (:class:`Select`,
:class:`RangeSelect`, :class:`Scan`) sit on BANG relations and exploit
the grid's clustered partial-match access; :class:`HashJoin` implements
the classic build/probe equi-join; :class:`IndexJoin` probes the inner
relation's grid per outer row (chosen by the planner when the inner
probe is selective).

Every node counts the rows it produces (``rows_out``) so benchmarks can
report intermediate cardinalities alongside the pager's I/O counters.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from ..bang.relation import BangRelation
from ..errors import CatalogError
from ..obs.tracing import NULL_TRACER


class Plan:
    """Base class for plan nodes."""

    def __init__(self) -> None:
        self.rows_out = 0

    def rows(self) -> Iterator[tuple]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _count(self, it: Iterator[tuple]) -> Iterator[tuple]:
        for row in it:
            self.rows_out += 1
            yield row


class Scan(Plan):
    """Full clustered scan of a BANG relation."""

    def __init__(self, relation: BangRelation):
        super().__init__()
        self.relation = relation

    def rows(self) -> Iterator[tuple]:
        return self._count(self.relation.scan())


class Select(Plan):
    """Exact partial-match selection via the grid."""

    def __init__(self, relation: BangRelation, assignment: Dict[int, Any]):
        super().__init__()
        self.relation = relation
        self.assignment = dict(assignment)

    def rows(self) -> Iterator[tuple]:
        return self._count(self.relation.query(self.assignment))


class RangeSelect(Plan):
    """Range selection on one orderable attribute (plus exact extras)."""

    def __init__(self, relation: BangRelation, attr: int,
                 low: Any, high: Any,
                 extra: Optional[Dict[int, Any]] = None):
        super().__init__()
        self.relation = relation
        self.attr = attr
        self.low = low
        self.high = high
        self.extra = dict(extra or {})

    def rows(self) -> Iterator[tuple]:
        return self._count(self.relation.range_query(
            self.attr, self.low, self.high, self.extra))


class Filter(Plan):
    """Arbitrary predicate over child rows (post-filter)."""

    def __init__(self, child: Plan, predicate: Callable[[tuple], bool]):
        super().__init__()
        self.child = child
        self.predicate = predicate

    def rows(self) -> Iterator[tuple]:
        pred = self.predicate
        return self._count(row for row in self.child.rows() if pred(row))


class Project(Plan):
    """Column projection (no duplicate elimination, like SQL SELECT)."""

    def __init__(self, child: Plan, columns: Sequence[int]):
        super().__init__()
        self.child = child
        self.columns = tuple(columns)

    def rows(self) -> Iterator[tuple]:
        cols = self.columns
        return self._count(
            tuple(row[c] for c in cols) for row in self.child.rows())


class Distinct(Plan):
    """Duplicate elimination (hash-based)."""

    def __init__(self, child: Plan):
        super().__init__()
        self.child = child

    def rows(self) -> Iterator[tuple]:
        def gen():
            seen = set()
            for row in self.child.rows():
                if row not in seen:
                    seen.add(row)
                    yield row
        return self._count(gen())


class HashJoin(Plan):
    """Equi-join: build a hash table on the left, probe with the right.

    Output rows are ``left_row + right_row``.
    """

    def __init__(self, left: Plan, right: Plan,
                 left_attr: int, right_attr: int):
        super().__init__()
        self.left = left
        self.right = right
        self.left_attr = left_attr
        self.right_attr = right_attr

    def rows(self) -> Iterator[tuple]:
        def gen():
            table: Dict[Any, List[tuple]] = {}
            for row in self.left.rows():
                table.setdefault(row[self.left_attr], []).append(row)
            for row in self.right.rows():
                for match in table.get(row[self.right_attr], ()):
                    yield match + row
        return self._count(gen())


class IndexJoin(Plan):
    """Index nested-loop join: per outer row, probe the inner grid.

    Output rows are ``outer_row + inner_row``.
    """

    def __init__(self, outer: Plan, inner: BangRelation,
                 outer_attr: int, inner_attr: int,
                 inner_extra: Optional[Dict[int, Any]] = None):
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.outer_attr = outer_attr
        self.inner_attr = inner_attr
        self.inner_extra = dict(inner_extra or {})

    def rows(self) -> Iterator[tuple]:
        def gen():
            for row in self.outer.rows():
                assignment = dict(self.inner_extra)
                assignment[self.inner_attr] = row[self.outer_attr]
                for match in self.inner.query(assignment):
                    yield row + match
        return self._count(gen())


class Rows(Plan):
    """In-memory leaf: a materialised tuple list used as a plan input.

    The semi-naive evaluator feeds delta relations (plain Python lists
    rebuilt every iteration) into join trees through this node; it is
    also handy in tests.  ``name`` shows up in :func:`describe`.
    """

    def __init__(self, data: Sequence[tuple], name: str = "rows"):
        super().__init__()
        self.data = data
        self.name = name

    def rows(self) -> Iterator[tuple]:
        return self._count(iter(self.data))


class LookupJoin(Plan):
    """Equi-join probing a *prebuilt* hash index per outer row.

    Unlike :class:`HashJoin`, which rebuilds its table on every
    execution, the index here is built once by the caller and shared
    across executions — the fixpoint evaluator indexes each EDB and
    total-IDB relation once per fixpoint and probes it every iteration,
    turning an O(edges × iterations) rebuild into O(edges).

    Output rows are ``outer_row + match`` for each tuple in
    ``index[outer_row[outer_attr]]``.
    """

    def __init__(self, outer: Plan, index: Dict[Any, List[tuple]],
                 outer_attr: int, name: str = "index"):
        super().__init__()
        self.outer = outer
        self.index = index
        self.outer_attr = outer_attr
        self.name = name

    def rows(self) -> Iterator[tuple]:
        def gen():
            index = self.index
            attr = self.outer_attr
            for row in self.outer.rows():
                for match in index.get(row[attr], ()):
                    yield row + match
        return self._count(gen())


class CrossJoin(Plan):
    """Cartesian product (for rare rules whose literals share no
    variables).  The right input is materialised once.

    Output rows are ``left_row + right_row``.
    """

    def __init__(self, left: Plan, right: Plan):
        super().__init__()
        self.left = left
        self.right = right

    def rows(self) -> Iterator[tuple]:
        def gen():
            right_rows = list(self.right.rows())
            for row in self.left.rows():
                for other in right_rows:
                    yield row + other
        return self._count(gen())


class Aggregate(Plan):
    """Scalar aggregation: count / sum / min / max / avg of a column."""

    _FUNCS = ("count", "sum", "min", "max", "avg")

    def __init__(self, child: Plan, func: str, column: int = 0):
        super().__init__()
        if func not in self._FUNCS:
            raise CatalogError(f"unknown aggregate {func!r}")
        self.child = child
        self.func = func
        self.column = column

    def rows(self) -> Iterator[tuple]:
        def gen():
            values = [row[self.column] for row in self.child.rows()]
            if self.func == "count":
                yield (len(values),)
            elif not values:
                yield (None,)
            elif self.func == "sum":
                yield (sum(values),)
            elif self.func == "min":
                yield (min(values),)
            elif self.func == "max":
                yield (max(values),)
            else:
                yield (sum(values) / len(values),)
        return self._count(gen())


class Materialize(Plan):
    """Materialise child rows once; reusable by multiple parents."""

    def __init__(self, child: Plan):
        super().__init__()
        self.child = child
        self._cache: Optional[List[tuple]] = None

    def rows(self) -> Iterator[tuple]:
        if self._cache is None:
            self._cache = list(self.child.rows())
        return self._count(iter(self._cache))


def describe(plan: Plan) -> str:
    """One-line plan summary with per-node row counts, e.g.
    ``HashJoin#1000(Select#100(emp), Scan#10000(dept))``."""
    children = [getattr(plan, attr) for attr in
                ("child", "left", "right", "outer")
                if isinstance(getattr(plan, attr, None), Plan)]
    inner = getattr(plan, "inner", None)
    label = f"{type(plan).__name__}#{plan.rows_out}"
    parts = [describe(c) for c in children]
    if isinstance(inner, BangRelation):
        parts.append(getattr(inner, "name", "relation"))
    elif isinstance(plan, (Scan, Select, RangeSelect)):
        parts.append(getattr(plan.relation, "name", "relation"))
    elif isinstance(plan, (Rows, LookupJoin)):
        parts.append(plan.name)
    return label + (f"({', '.join(parts)})" if parts else "")


def execute(plan: Plan, tracer=None) -> List[tuple]:
    """Run a plan to completion; returns the materialised result.

    With a tracer, the run is recorded as a ``relational.execute`` span
    whose ``plan`` attribute carries the post-execution shape (node
    types + per-node cardinalities) alongside the span's counter delta
    (page reads, buffer hits, ...).
    """
    tracer = tracer or NULL_TRACER
    with tracer.span("relational.execute") as span:
        rows = list(plan.rows())
        if span is not None:
            span.attrs["plan"] = describe(plan)
            span.attrs["rows"] = len(rows)
    return rows
