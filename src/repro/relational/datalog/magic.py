"""Magic-set rewriting: demand-driven bottom-up evaluation.

Pure semi-naive evaluation computes the *whole* least model — for a
bound-argument query like ``reach(a, X)`` over a large graph that means
deriving reachability from every vertex, then throwing almost all of it
away.  The magic-set transformation (Bancilhon/Beeri/Ramakrishnan/Ullman;
see Brass & Stephan in PAPERS.md) rewrites the program so bottom-up
derivation is restricted to facts *relevant to the query*:

* each IDB predicate is split per **adornment** — a b/f string recording
  which argument positions are bound at call time (``reach@bf``);
* a **magic predicate** per adornment (``magic$reach@bf``, arity =
  number of bound positions) collects the demanded bindings, seeded with
  the query's constants;
* every original rule gets a magic *guard* literal so it only fires for
  demanded bindings, and every IDB body literal spawns a magic rule that
  propagates demand using a left-to-right sideways information passing
  strategy (bindings flow through the body in clause order).

Negated body literals do not receive demand (they cannot bind variables
and their extent must be complete before the stratum runs): they are
rewritten to the all-free adornment, whose rules carry no guard — i.e.
their full extent is computed, exactly as without magic.

The rewrite can destroy stratifiability even when the source program is
stratified (a known failure mode — docs/DATALOG.md): the caller must
re-check the rewritten program and fall back to the unrewritten one when
:func:`rewrite` returns None.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .rules import Indicator, Literal, Rule, V, stratify

__all__ = ["MagicProgram", "rewrite", "adornment_of", "adorned_name",
           "magic_name"]


def adornment_of(args: Tuple[object, ...],
                 bound_positions: Set[int]) -> str:
    return "".join("b" if (pos in bound_positions
                           or not isinstance(arg, V)) else "f"
                   for pos, arg in enumerate(args))


def adorned_name(ind: Indicator, adn: str) -> Indicator:
    return (f"{ind[0]}@{adn}", ind[1])


def magic_name(ind: Indicator, adn: str) -> Indicator:
    return (f"magic${ind[0]}@{adn}", adn.count("b"))


@dataclass
class MagicProgram:
    """A successfully rewritten (and still stratifiable) program."""

    rules: Dict[Indicator, List[Rule]]
    strata: Dict[Indicator, int]
    #: the adorned predicate holding the query's answers
    query_pred: Indicator
    #: the query's adornment string
    adornment: str
    #: magic predicates introduced by the rewrite
    magic_preds: Set[Indicator]


def _safe_body(body: List[Literal]) -> Tuple[Literal, ...]:
    """Keep every positive literal; keep a negated literal only when
    its variables are bound by the kept positives."""
    positive_vars: Set[str] = set()
    for lit in body:
        if not lit.negated:
            positive_vars |= lit.var_names()
    return tuple(lit for lit in body
                 if not lit.negated or lit.var_names() <= positive_vars)


def rewrite(rules: Dict[Indicator, List[Rule]], query: Indicator,
            bound_positions: Set[int],
            query_constants: Tuple[Tuple[int, object], ...]
            ) -> Optional[MagicProgram]:
    """Rewrite *rules* for a query on *query* with the given bound
    argument positions; *query_constants* are ``(position, value)``
    pairs seeding the demand.  Returns None when there is nothing to
    gain (no bound positions) or when the rewritten program is no
    longer stratifiable.
    """
    if not bound_positions or query not in rules:
        return None
    query_adn = "".join("b" if i in bound_positions else "f"
                        for i in range(query[1]))

    out: Dict[Indicator, List[Rule]] = {}
    magic_preds: Set[Indicator] = set()
    seen: Set[Tuple[Indicator, str]] = set()
    worklist: List[Tuple[Indicator, str]] = [(query, query_adn)]

    while worklist:
        ind, adn = worklist.pop()
        if (ind, adn) in seen:
            continue
        seen.add((ind, adn))
        guarded = adn.count("b") > 0
        new_head_pred = adorned_name(ind, adn)
        magic = magic_name(ind, adn)
        if guarded:
            magic_preds.add(magic)

        for rule in rules[ind]:
            bound_vars: Set[str] = set()
            for pos, arg in enumerate(rule.head.args):
                if adn[pos] == "b" and isinstance(arg, V):
                    bound_vars.add(arg.name)

            guard: List[Literal] = []
            if guarded:
                guard = [Literal(magic, tuple(
                    arg for pos, arg in enumerate(rule.head.args)
                    if adn[pos] == "b"))]

            new_body: List[Literal] = list(guard)
            for lit in rule.body:
                if lit.pred not in rules:
                    # EDB (base) literal: unchanged; it binds its
                    # variables for everything to its right.
                    new_body.append(lit)
                    if not lit.negated:
                        bound_vars |= lit.var_names()
                    continue
                if lit.negated:
                    # No demand into negation: all-free adornment, full
                    # extent, no guard on its rules.
                    free = "f" * lit.pred[1]
                    new_body.append(Literal(adorned_name(lit.pred, free),
                                            lit.args, negated=True))
                    worklist.append((lit.pred, free))
                    continue
                lit_adn = adornment_of(
                    lit.args, {pos for pos, arg in enumerate(lit.args)
                               if isinstance(arg, V)
                               and arg.name in bound_vars})
                if lit_adn.count("b"):
                    # Demand rule: the bindings reaching this literal —
                    # the guard plus everything already to its left —
                    # produce a magic fact for it.  Negated prefix
                    # literals whose variables are only bound *later*
                    # in the clause are dropped: demand may safely be a
                    # superset (the adorned rule still applies the full
                    # checks), but an unbound negation would make the
                    # magic rule unsafe.
                    lit_magic = magic_name(lit.pred, lit_adn)
                    magic_preds.add(lit_magic)
                    head = Literal(lit_magic, tuple(
                        arg for pos, arg in enumerate(lit.args)
                        if lit_adn[pos] == "b"))
                    out.setdefault(lit_magic, []).append(
                        Rule(head, _safe_body(new_body)))
                new_body.append(Literal(adorned_name(lit.pred, lit_adn),
                                        lit.args))
                bound_vars |= lit.var_names()
                worklist.append((lit.pred, lit_adn))

            out.setdefault(new_head_pred, []).append(Rule(
                Literal(new_head_pred, rule.head.args), tuple(new_body)))

    # Seed: the query's constants are the initial demand.
    seed_magic = magic_name(query, query_adn)
    seed_args = tuple(value for _pos, value in sorted(query_constants))
    out.setdefault(seed_magic, []).append(
        Rule(Literal(seed_magic, seed_args)))

    strata, _recursive, _error = stratify(out)
    if strata is None:
        return None
    return MagicProgram(rules=out, strata=strata,
                        query_pred=adorned_name(query, query_adn),
                        adornment=query_adn, magic_preds=magic_preds)
