"""Recursive set-at-a-time evaluation (ROADMAP item 4, docs/DATALOG.md).

The missing half of the paper's dual strategy for *recursive*
predicates: rule extraction (:mod:`.rules`), semi-naive bottom-up
fixpoints over the relational algebra (:mod:`.seminaive`), magic-set
demand rewriting for bound-argument queries (:mod:`.magic`), and a
cost-based per-goal strategy planner (:mod:`.strategy`), assembled by
:class:`~repro.relational.datalog.engine.DatalogEngine`.
"""

from .engine import DatalogEngine
from .magic import MagicProgram, rewrite
from .rules import (Analysis, DatalogRulebase, Literal, NotDatalog, Rule, V,
                    analyze, rule_from_clause, stratify)
from .seminaive import FixpointStats, SemiNaiveEvaluator
from .strategy import DEFAULT_MIN_ROWS, Decision, choose

__all__ = [
    "DatalogEngine",
    "DatalogRulebase",
    "Analysis",
    "Literal",
    "Rule",
    "V",
    "NotDatalog",
    "analyze",
    "rule_from_clause",
    "stratify",
    "SemiNaiveEvaluator",
    "FixpointStats",
    "MagicProgram",
    "rewrite",
    "Decision",
    "choose",
    "DEFAULT_MIN_ROWS",
]
