"""The Datalog engine: routing, evaluation, telemetry.

:class:`DatalogEngine` sits between the session's :meth:`solve` entry
point and the WAM.  For each goal it decides — via the program analysis
of :mod:`.rules` and the cost heuristics of :mod:`.strategy` — whether
the goal should be answered bottom-up; if so it (optionally) applies the
magic-set rewrite of :mod:`.magic`, runs the semi-naive fixpoint of
:mod:`.seminaive` under the store's shared read lock, and converts the
answer tuples back into WAM-compatible :class:`Solution` objects.

Every decision and evaluation is visible in the session's telemetry:

* ``datalog_*`` counters (queries, per-strategy routing, iterations,
  derived facts, magic rewrites/fallbacks/facts, analysis passes);
* the ``datalog_fixpoint_iterations`` histogram (per-evaluation
  semi-naive pass counts);
* a ``datalog.evaluate`` span when tracing is on, carrying the chosen
  strategy, adornment, iteration count and answer cardinality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...obs.registry import Histogram
from ...obs.tracing import NULL_TRACER
from ...terms import Atom, Struct, Var, deref
from ...wam.machine import Solution
from .magic import rewrite
from .rules import (Analysis, Indicator, analyze, const_to_term,
                    indicator_str, term_to_const)
from .seminaive import FixpointStats, SemiNaiveEvaluator
from .strategy import DEFAULT_MIN_ROWS, Decision, choose

__all__ = ["DatalogEngine"]

#: fixpoint pass counts bucketed in powers of two
_ITER_BOUNDARIES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_CONTROL = {(",", 2), (";", 2), ("->", 2), ("\\+", 1), ("not", 1),
            ("call", 1), ("findall", 3), ("bagof", 3), ("setof", 3)}


class DatalogEngine:
    """Bottom-up evaluation subsystem of one session."""

    def __init__(self, store, reader, tracer=None, mode: str = "auto",
                 min_rows: int = DEFAULT_MIN_ROWS, magic: bool = True):
        if mode not in ("auto", "force", "off"):
            raise ValueError(f"datalog mode {mode!r} "
                             "(expected auto/force/off)")
        self.store = store
        self.reader = reader
        self.tracer = tracer or NULL_TRACER
        self.mode = mode
        self.min_rows = min_rows
        self.magic = magic

        self._analysis: Optional[Analysis] = None
        self._analysis_key: Optional[Tuple[int, int]] = None
        #: callback ``ind -> (call_modes, determinism) | None`` wired by
        #: the session once a whole-program analysis exists; planning
        #: never triggers an analysis itself (docs/ANALYSIS.md)
        self.modes_provider = None
        self.last_decision: Optional[Decision] = None
        #: fixpoint stats of the most recent bottom-up evaluation
        #: (ANALYZE folds its per-pass delta counts into the plan tree)
        self.last_stats: Optional[FixpointStats] = None

        self.queries = 0
        self.bottomup = 0
        self.topdown = 0
        self.iterations = 0
        self.facts_derived = 0
        self.edb_rows = 0
        self.magic_rewrites = 0
        self.magic_fallbacks = 0
        self.magic_facts = 0
        self.extractions = 0
        #: goals that targeted a stored ``rules`` procedure but fell
        #: back to the WAM because the live rulebase was dropped when
        #: the store was reopened (checkpoints persist compiled code
        #: only — docs/DATALOG.md, "recovered stores")
        self.rulebase_missing = 0
        #: decisions short-circuited by inferred determinism classes
        self.mode_shortcuts = 0
        self._missing_reported: Set[Indicator] = set()
        self._fixpoint_hist = Histogram(boundaries=_ITER_BOUNDARIES)

    # ------------------------------------------------------------- analysis

    def analysis(self) -> Analysis:
        """The current program analysis, re-extracted only when the
        rulebase or the store changed (epoch-keyed cache)."""
        key = (self.store.datalog_rules.epoch, self.store.mutation_epoch)
        if self._analysis is None or self._analysis_key != key:
            with self.store.reading():
                clause_map = self.store.datalog_rules.clauses()
                self._analysis = analyze(clause_map, self._is_edb)
            self._analysis_key = key
            self.extractions += 1
        return self._analysis

    def _is_edb(self, ind: Indicator) -> bool:
        proc = self.store.lookup(*ind)
        return proc is not None and proc.mode == "facts"

    def _global_info(self, ind: Indicator):
        """Whole-program facts for *ind*, when the session installed a
        provider and an analysis has run — else None."""
        if self.modes_provider is None:
            return None
        try:
            return self.modes_provider(ind)
        except Exception:
            return None

    # -------------------------------------------------------------- routing

    def route(self, goal, limit: Optional[int] = None
              ) -> Optional[List[Solution]]:
        """Answer *goal* bottom-up, or return None to send it to the
        WAM.  Mirrors :meth:`Machine.solve`'s binding conventions so the
        two paths are interchangeable."""
        if self.mode == "off":
            return None
        if not len(self.store.datalog_rules):
            # Fast path for sessions that never stored rules — but on a
            # *reopened* store an empty rulebase may mean the live rules
            # were dropped with the checkpoint: surface that fallback
            # instead of silently running recursion on the WAM.
            if self.store.datalog_rules_dropped:
                self._note_rulebase_missing(goal)
            return None
        spec = self._goal_spec(goal)
        if spec is None:
            return None
        ind, items, varmap = spec
        if ind not in self.store.datalog_rules:
            if self.store.datalog_rules_dropped:
                self._note_missing_indicator(ind)
            return None

        analysis = self.analysis()
        decision = choose(analysis, ind, self.store, self.mode,
                          self.min_rows,
                          global_info=self._global_info(ind))
        self.queries += 1
        self.last_decision = decision
        if decision.mode_shortcut:
            self.mode_shortcuts += 1
        if decision.strategy != "bottomup":
            self.topdown += 1
            return None
        self.bottomup += 1
        answers = self._solve_bottom_up(ind, items, analysis, decision)
        return self._bind(answers, items, varmap, limit)

    def _note_rulebase_missing(self, goal) -> None:
        spec = self._goal_spec(goal)
        if spec is not None:
            self._note_missing_indicator(spec[0])

    def _note_missing_indicator(self, ind: Indicator) -> None:
        """Count a WAM fallback caused by the reopened-store rulebase
        drop: the goal targets a stored ``rules`` procedure, the store
        was reconstructed from a checkpoint, and no live surface
        clauses exist to evaluate it bottom-up.  One flight-recorder
        event per procedure (the counter keeps the full tally)."""
        proc = self.store.lookup(*ind)
        if proc is None or proc.mode != "rules":
            return
        self.rulebase_missing += 1
        if ind not in self._missing_reported:
            self._missing_reported.add(ind)
            events = getattr(self.store, "events", None)
            if events is not None and events.enabled:
                events.record("datalog.rulebase_missing",
                              procedure=indicator_str(ind))

    def _goal_spec(self, goal):
        """(indicator, arg items, varmap) of a routable goal, or None.

        Items are ``("var", name)`` / ``("const", value)`` per argument;
        the varmap follows the machine's conventions (parser varmap for
        text goals, non-underscore surface variables for term goals).
        """
        if isinstance(goal, str):
            try:
                goal_term, varmap = self.reader.read_term_with_vars(goal)
            except Exception:
                return None
        else:
            from ...terms import term_variables
            goal_term = goal
            varmap = {v.name: v for v in term_variables(goal_term)
                      if not v.name.startswith("_")}

        goal_term = deref(goal_term)
        if isinstance(goal_term, Atom):
            return ((goal_term.name, 0), [], varmap)
        if not isinstance(goal_term, Struct) \
                or goal_term.indicator in _CONTROL:
            return None
        items: List[tuple] = []
        for arg in goal_term.args:
            arg = deref(arg)
            if isinstance(arg, Var):
                items.append(("var", arg.name))
                continue
            value = term_to_const(arg)
            if value is None:
                return None        # compound argument: WAM territory
            items.append(("const", value))
        return (goal_term.indicator, items, varmap)

    # ----------------------------------------------------------- evaluation

    def _solve_bottom_up(self, ind: Indicator, items: List[tuple],
                         analysis: Analysis,
                         decision: Decision) -> Set[tuple]:
        deps = analysis.dependencies(ind)
        rules = {d: analysis.rules[d] for d in deps if d in analysis.rules}
        strata = {d: analysis.strata[d] for d in rules}
        bound = {pos for pos, (kind, _v) in enumerate(items)
                 if kind == "const"}
        consts = tuple((pos, value) for pos, (kind, value)
                       in enumerate(items) if kind == "const")

        program = None
        if self.magic and bound:
            program = rewrite(rules, ind, bound, consts)
            if program is not None:
                self.magic_rewrites += 1
                decision.magic = True
                decision.adornment = program.adornment
            else:
                self.magic_fallbacks += 1

        with self.store.reading():
            with self.tracer.span(
                    "datalog.evaluate", goal=indicator_str(ind),
                    strategy=decision.strategy,
                    magic=decision.magic) as span:
                if program is not None:
                    evaluator = SemiNaiveEvaluator(
                        self.store, program.rules, program.strata,
                        self.tracer)
                    totals = evaluator.run()
                    answers = totals.get(program.query_pred, set())
                    self.magic_facts += sum(
                        len(totals.get(m, ()))
                        for m in program.magic_preds)
                else:
                    evaluator = SemiNaiveEvaluator(
                        self.store, rules, strata, self.tracer)
                    totals = evaluator.run()
                    answers = totals.get(ind, set())
                self._account(evaluator.stats)
                self.last_stats = evaluator.stats
                if span is not None:
                    span.attrs.update(
                        iterations=evaluator.stats.iterations,
                        strata=evaluator.stats.strata,
                        facts=evaluator.stats.facts,
                        answers=len(answers),
                        adornment=decision.adornment or "")
        return answers

    def _account(self, stats: FixpointStats) -> None:
        self.iterations += stats.iterations
        self.facts_derived += stats.facts
        self.edb_rows += stats.edb_rows
        self._fixpoint_hist.observe(stats.iterations)

    def _bind(self, answers: Set[tuple], items: List[tuple], varmap,
              limit: Optional[int]) -> List[Solution]:
        """Answer tuples → Solutions: filter by the goal's constants and
        repeated variables, deterministic order, machine-style bindings."""
        first_pos: Dict[str, int] = {}
        checks: List[tuple] = []
        for pos, (kind, value) in enumerate(items):
            if kind == "const":
                checks.append(("const", pos, value))
            elif value in first_pos:
                checks.append(("eq", first_pos[value], pos))
            else:
                first_pos[value] = pos

        rows = []
        for row in answers:
            ok = True
            for kind, a, b in checks:
                if kind == "const":
                    if row[a] != b:
                        ok = False
                        break
                elif row[a] != row[b]:
                    ok = False
                    break
            if ok:
                rows.append(row)
        rows.sort(key=lambda row: tuple(
            (type(v).__name__, v) for v in row))
        if limit is not None:
            rows = rows[:limit]

        solutions = []
        for row in rows:
            bindings = {name: const_to_term(row[pos])
                        for name, pos in first_pos.items()
                        if name in varmap}
            solutions.append(Solution(bindings))
        return solutions

    # -------------------------------------------------------------- explain

    def explain(self, goal) -> str:
        """Human-readable strategy report for ``:plan <goal>`` — the
        decision, evaluable strata, and the magic adornment (nothing is
        evaluated)."""
        spec = self._goal_spec(goal)
        if spec is None:
            return ("not routable: goal is not a single positive literal "
                    "with atomic arguments")
        ind, items, _varmap = spec
        if ind not in self.store.datalog_rules:
            return (f"{indicator_str(ind)}: topdown (not a stored rules "
                    "procedure)")
        analysis = self.analysis()
        decision = choose(analysis, ind, self.store, self.mode,
                          self.min_rows,
                          global_info=self._global_info(ind))
        lines = [f"strategy: {decision.strategy}",
                 f"reason:   {decision.reason}"]
        if decision.call_modes or decision.determinism:
            lines.append(f"analysis: call={decision.call_modes or '?'} "
                         f"det={decision.determinism or '?'}")
        if decision.evaluable:
            lines.append(f"base:     {decision.base_rows} EDB rows in "
                         f"{sorted(indicator_str(d) for d in analysis.dependencies(ind) & analysis.edb)}")
            for level, members in enumerate(decision.strata):
                marks = ", ".join(
                    indicator_str(m)
                    + (" (recursive)" if m in analysis.recursive else "")
                    for m in members)
                lines.append(f"stratum {level}: {marks}")
            bound = {pos for pos, (kind, _v) in enumerate(items)
                     if kind == "const"}
            if bound and self.magic:
                consts = tuple((pos, v) for pos, (kind, v)
                               in enumerate(items) if kind == "const")
                deps = analysis.dependencies(ind)
                rules = {d: analysis.rules[d] for d in deps
                         if d in analysis.rules}
                program = rewrite(rules, ind, bound, consts)
                if program is not None:
                    lines.append(f"adornment: {program.adornment} "
                                 f"({len(program.magic_preds)} magic "
                                 "predicates)")
                else:
                    lines.append("adornment: magic rewrite abandoned "
                                 "(rewritten program unstratifiable)")
            elif not bound:
                lines.append("adornment: none (no bound arguments)")
        return "\n".join(lines)

    def explain_plan(self, goal):
        """EXPLAIN subtree for a stored-rules goal — the strategy
        decision with its cost inputs, the magic adornment, and the
        evaluable strata/rules exactly as a bottom-up run would see
        them.  Returns a :class:`~repro.obs.explain.PlanNode` or None
        when the goal is not routable (wrong shape, or not a stored
        rules procedure); nothing is evaluated."""
        from ...obs.explain import PlanNode
        spec = self._goal_spec(goal)
        if spec is None:
            return None
        ind, items, _varmap = spec
        if ind not in self.store.datalog_rules:
            return None
        analysis = self.analysis()
        decision = choose(analysis, ind, self.store, self.mode,
                          self.min_rows,
                          global_info=self._global_info(ind))
        node = PlanNode("decision", indicator_str(ind),
                        strategy=decision.strategy,
                        reason=decision.reason,
                        mode=self.mode, min_rows=self.min_rows,
                        base_rows=decision.base_rows,
                        evaluable=decision.evaluable,
                        recursive=decision.recursive)
        if decision.call_modes is not None:
            node.attrs["call_modes"] = decision.call_modes
        if decision.determinism is not None:
            node.attrs["determinism"] = decision.determinism
        if decision.blocked:
            node.attrs["blocked"] = decision.blocked
        if decision.strategy != "bottomup":
            return node

        # Mirror _solve_bottom_up's program construction so the plan
        # names exactly what an evaluation would run.
        deps = analysis.dependencies(ind)
        rules = {d: analysis.rules[d] for d in deps if d in analysis.rules}
        strata = {d: analysis.strata[d] for d in rules}
        bound = {pos for pos, (kind, _v) in enumerate(items)
                 if kind == "const"}
        consts = tuple((pos, value) for pos, (kind, value)
                       in enumerate(items) if kind == "const")
        program = None
        if self.magic and bound:
            program = rewrite(rules, ind, bound, consts)
        if program is not None:
            node.add(PlanNode("magic", program.adornment,
                              adornment=program.adornment,
                              magic_preds=len(program.magic_preds),
                              bound_args=len(bound)))
            rules, strata = program.rules, program.strata
        elif bound and self.magic:
            node.add(PlanNode(
                "magic", "none", bound_args=len(bound),
                note="rewrite abandoned (rewritten program "
                     "unstratifiable)"))
        else:
            node.add(PlanNode("magic", "none", bound_args=len(bound),
                              note="no bound arguments"))

        by_level: Dict[int, List[Indicator]] = {}
        for d, level in strata.items():
            by_level.setdefault(level, []).append(d)
        for level in sorted(by_level):
            members = sorted(by_level[level])
            scc = set(members)
            snode = node.add(PlanNode(
                "stratum", str(level),
                members=",".join(indicator_str(m) for m in members)))
            for d in members:
                for i, rule in enumerate(rules[d]):
                    body = ",".join(
                        ("\\+" if lit.negated else "")
                        + indicator_str(lit.pred) for lit in rule.body)
                    snode.add(PlanNode(
                        "rule", f"{indicator_str(d)}#{i}", body=body,
                        recursive=any(not lit.negated and lit.pred in scc
                                      for lit in rule.body)))
        return node

    # ------------------------------------------------------------ telemetry

    def counters(self) -> dict:
        return {
            "datalog_queries": self.queries,
            "datalog_bottomup": self.bottomup,
            "datalog_topdown": self.topdown,
            "datalog_iterations": self.iterations,
            "datalog_facts_derived": self.facts_derived,
            "datalog_edb_rows": self.edb_rows,
            "datalog_magic_rewrites": self.magic_rewrites,
            "datalog_magic_fallbacks": self.magic_fallbacks,
            "datalog_magic_facts": self.magic_facts,
            "datalog_extractions": self.extractions,
            "datalog_rulebase_missing": self.rulebase_missing,
            "datalog_mode_shortcuts": self.mode_shortcuts,
        }

    def histograms(self) -> Dict[str, Histogram]:
        return {"datalog_fixpoint_iterations": self._fixpoint_hist}
