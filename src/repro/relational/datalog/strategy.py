"""Per-call-site strategy selection: WAM top-down vs bottom-up.

The paper's dual evaluation strategy (§4) leaves *which* engine answers
a given goal to the system.  The heuristics here extend the relational
access-path planner's premise — page transfer dominates, so cost in
data volume — one level up:

* goals whose predicate is not Datalog-evaluable (blocked by shape,
  range restriction, dependency on a builtin, or unstratified negation)
  must run top-down;
* non-recursive evaluable goals also run top-down: the WAM with the
  dynamic loader already answers those in one pass, and bottom-up would
  only add fixpoint machinery around the same joins;
* recursive evaluable goals run bottom-up **when the base data is large
  enough to pay for it** — the relevant EDB row count (summed over the
  dependency closure) must reach ``min_rows``.  Below that, tuple-at-
  a-time resolution wins on constant factors; above it, set-at-a-time
  joins win asymptotically (no re-derivation, bulk index probes).

``mode`` overrides: ``"force"`` routes every evaluable recursive goal
bottom-up regardless of size (the differential suite uses this),
``"off"`` disables routing entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .rules import Analysis, Indicator, indicator_str

__all__ = ["Decision", "choose", "DEFAULT_MIN_ROWS"]

#: below this many relevant EDB rows, stay on the WAM
DEFAULT_MIN_ROWS = 256


@dataclass
class Decision:
    """One strategy decision, as shown by ``:plan`` and span attrs."""

    indicator: Indicator
    strategy: str               # 'bottomup' | 'topdown'
    reason: str
    evaluable: bool = False
    recursive: bool = False
    blocked: Optional[str] = None
    base_rows: int = 0
    #: cost inputs that drove the choice (EXPLAIN renders these)
    mode: str = "auto"
    min_rows: int = DEFAULT_MIN_ROWS
    #: evaluable strata of the goal's dependency closure, bottom first
    strata: List[List[Indicator]] = field(default_factory=list)
    #: query adornment (filled in by the engine when magic applies)
    adornment: Optional[str] = None
    magic: bool = False
    #: whole-program analysis facts, when one has run this session
    #: (docs/ANALYSIS.md): the inferred call modes ("gna" letters) and
    #: determinism class of the goal's predicate
    call_modes: Optional[str] = None
    determinism: Optional[str] = None
    #: True when the inferred determinism short-circuited costing
    mode_shortcut: bool = False

    def describe(self) -> str:
        return (f"{indicator_str(self.indicator)}: {self.strategy} "
                f"({self.reason})")


def choose(analysis: Analysis, ind: Indicator, store,
           mode: str = "auto",
           min_rows: int = DEFAULT_MIN_ROWS,
           global_info=None) -> Decision:
    """Pick the strategy for a goal on *ind*.

    *global_info* is ``(call_modes, determinism)`` from the session's
    whole-program analysis, or None when none has run.  A predicate the
    analysis proved ``fails``/``det``/``semidet`` yields at most one
    solution, so the fixpoint machinery can never pay for itself —
    costing is short-circuited straight to top-down, before the
    base-row walk spends store lookups.  (Strategy choice never affects
    answers, so the inferred class is used as a cost fact only.)
    """
    call_modes_s: Optional[str] = None
    determinism: Optional[str] = None
    if global_info is not None:
        raw_modes, determinism = global_info
        if raw_modes is not None:
            from ...analysis.global_.modes import mode_string
            call_modes_s = mode_string(raw_modes)
    if mode == "off":
        return Decision(ind, "topdown", "datalog routing disabled",
                        mode=mode, min_rows=min_rows)
    if ind not in analysis.evaluable:
        blocked = analysis.blocked.get(
            ind, "not a stored rules procedure")
        return Decision(ind, "topdown", blocked, blocked=blocked,
                        mode=mode, min_rows=min_rows,
                        call_modes=call_modes_s, determinism=determinism)
    if mode != "force" and determinism in ("fails", "det", "semidet"):
        return Decision(
            ind, "topdown",
            f"analysis: {determinism} — at most one solution, the "
            "fixpoint cannot pay for itself",
            evaluable=True, mode=mode, min_rows=min_rows,
            call_modes=call_modes_s, determinism=determinism,
            mode_shortcut=True)

    deps = analysis.dependencies(ind)
    recursive = bool(deps & analysis.recursive)
    strata = analysis.strata_of(ind)
    base_rows = 0
    for dep in sorted(deps & analysis.edb):
        proc = store.lookup(*dep)
        if proc is not None:
            base_rows += len(proc.relation)

    if not recursive:
        return Decision(
            ind, "topdown",
            "non-recursive: one top-down pass answers it",
            evaluable=True, recursive=False, base_rows=base_rows,
            strata=strata, mode=mode, min_rows=min_rows,
            call_modes=call_modes_s, determinism=determinism)
    if mode != "force" and base_rows < min_rows:
        return Decision(
            ind, "topdown",
            f"small EDB ({base_rows} rows < {min_rows}): tuple-at-a-time "
            "wins on constant factors",
            evaluable=True, recursive=True, base_rows=base_rows,
            strata=strata, mode=mode, min_rows=min_rows,
            call_modes=call_modes_s, determinism=determinism)
    reason = (f"recursive over {base_rows} EDB rows"
              if mode != "force" else "forced bottom-up")
    return Decision(ind, "bottomup", reason, evaluable=True,
                    recursive=True, base_rows=base_rows, strata=strata,
                    mode=mode, min_rows=min_rows,
                    call_modes=call_modes_s, determinism=determinism)
