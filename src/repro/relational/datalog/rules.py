"""Datalog rule extraction and program analysis.

The relational engine evaluates *sets* of tuples; the WAM evaluates one
resolution at a time.  This module decides which stored procedures can
legally cross that bridge: a procedure is **Datalog-evaluable** when

* every clause is *Datalog-shaped* — the body is a conjunction of
  positive or ``\\+``-negated literals whose arguments are variables or
  atomic constants (no compound terms, no arithmetic, no control
  constructs, no cuts);
* every clause is **range-restricted** (safe): each head variable and
  each variable of a negated literal also occurs in a positive body
  literal, so bottom-up derivation only ever produces ground tuples;
* every predicate it depends on is either another evaluable procedure
  (IDB) or a facts-mode relation in the EDB;
* negation is **stratifiable**: no predicate depends on its own
  negation through the dependency graph.

The extraction pass works on surface clause :class:`~repro.terms.Term`
objects — the store keeps them in a live-session
:class:`DatalogRulebase` beside the compiled code (the compiled form is
what the WAM executes; the surface form is what the set-at-a-time
evaluator compiles into algebra plans).  Constants are normalised to
the raw Python values facts relations store (``Atom`` → ``str``,
numbers unchanged), so rule evaluation joins directly against BANG
rows without term wrapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...terms import Atom, Struct, Term, Var

__all__ = [
    "V", "Literal", "Rule", "NotDatalog", "DatalogRulebase",
    "Analysis", "rule_from_clause", "rules_from_clauses", "analyze",
    "term_to_const", "const_to_term", "stratify", "indicator_str",
]

Indicator = Tuple[str, int]


class V:
    """A rule variable (named placeholder in the extracted IR)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other) -> bool:
        return isinstance(other, V) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("V", self.name))

    def __repr__(self) -> str:
        return self.name


class NotDatalog(Exception):
    """A clause (or program) is outside the Datalog fragment."""


def term_to_const(term: Term):
    """Surface constant → the raw value facts relations store.

    Returns ``None`` for anything that is not an atomic constant
    (callers must treat ``None`` as *not a constant*, never as a
    value — facts rows cannot hold ``None``).
    """
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, (int, float)) and not isinstance(term, bool):
        return term
    return None


def const_to_term(value) -> Term:
    """Raw relation value → surface term (for Solution bindings)."""
    if isinstance(value, str):
        return Atom(value)
    return value


def indicator_str(ind: Indicator) -> str:
    return f"{ind[0]}/{ind[1]}"


@dataclass(frozen=True)
class Literal:
    """One body or head literal: predicate + argument vector."""

    pred: Indicator
    args: Tuple[object, ...]        # V instances and raw constants
    negated: bool = False

    def vars(self) -> List[V]:
        return [a for a in self.args if isinstance(a, V)]

    def var_names(self) -> Set[str]:
        return {a.name for a in self.args if isinstance(a, V)}

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        body = f"{self.pred[0]}({inner})" if self.args else self.pred[0]
        return f"\\+ {body}" if self.negated else body


@dataclass(frozen=True)
class Rule:
    """``head :- body``; facts are rules with an empty body."""

    head: Literal
    body: Tuple[Literal, ...] = ()

    @property
    def positives(self) -> Tuple[Literal, ...]:
        return tuple(l for l in self.body if not l.negated)

    @property
    def negatives(self) -> Tuple[Literal, ...]:
        return tuple(l for l in self.body if l.negated)

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(l) for l in self.body)}."


# =====================================================================
# Clause → rule extraction
# =====================================================================

_NEGATION = {("\\+", 1), ("not", 1)}
_CONJ = (",", 2)

#: control constructs and builtins a Datalog body may not contain.
#: (Anything not listed here that is neither IDB nor EDB is still
#: blocked later, by the dependency analysis — this set just gives the
#: common cases a direct, readable rejection reason.)
_NON_LITERAL = {
    ("!", 0), ("true", 0), ("fail", 0), ("false", 0), ("halt", 0),
    (";", 2), ("->", 2), ("*->", 2),
    ("=", 2), ("\\=", 2), ("==", 2), ("\\==", 2),
    ("is", 2), ("<", 2), (">", 2), ("=<", 2), (">=", 2),
    ("=:=", 2), ("=\\=", 2), ("@<", 2), ("@>", 2), ("@=<", 2),
    ("@>=", 2), ("=..", 2), ("compare", 3),
    ("var", 1), ("nonvar", 1), ("atom", 1), ("number", 1),
    ("atomic", 1), ("compound", 1), ("callable", 1),
    ("call", 1), ("findall", 3), ("bagof", 3), ("setof", 3),
    ("forall", 2), ("assert", 1), ("asserta", 1), ("assertz", 1),
    ("retract", 1), ("once", 1), ("ignore", 1), ("catch", 3),
    ("throw", 1), ("write", 1), ("nl", 0), ("read", 1),
}


def _flatten_body(term: Term, out: List[Term]) -> None:
    if isinstance(term, Struct) and term.indicator == _CONJ:
        _flatten_body(term.args[0], out)
        _flatten_body(term.args[1], out)
    else:
        out.append(term)


def _literal_from_term(term: Term, varmap: Dict[int, V],
                       negated: bool = False) -> Literal:
    if isinstance(term, Atom):
        if (term.name, 0) in _NON_LITERAL:
            raise NotDatalog(f"control goal {term.name}/0")
        return Literal((term.name, 0), (), negated)
    if not isinstance(term, Struct):
        raise NotDatalog(f"non-callable goal {term!r}")
    if term.indicator in _NON_LITERAL:
        raise NotDatalog(
            f"builtin goal {term.name}/{term.arity}")
    args: List[object] = []
    for arg in term.args:
        if isinstance(arg, Var):
            ref = varmap.get(id(arg))
            if ref is None:
                # Keep the surface name (for readable diagnostics and
                # :plan output); anonymous or colliding vars get a
                # fresh positional name.
                name = arg.name if arg.name and arg.name != "_" \
                    else f"_G{len(varmap)}"
                if any(v.name == name for v in varmap.values()):
                    name = f"{name}_{len(varmap)}"
                ref = varmap[id(arg)] = V(name)
            args.append(ref)
            continue
        value = term_to_const(arg)
        if value is None:
            raise NotDatalog(
                f"compound argument {arg!r} in {term.name}/{term.arity}")
        args.append(value)
    return Literal((term.name, term.arity), tuple(args), negated)


def rule_from_clause(clause: Term) -> Rule:
    """Extract one clause into the Datalog IR.

    Raises :class:`NotDatalog` with a human-readable reason when the
    clause falls outside the fragment (control constructs, builtins,
    compound arguments, non-literal goals).
    """
    varmap: Dict[int, V] = {}
    if isinstance(clause, Struct) and clause.indicator == (":-", 2):
        head_term, body_term = clause.args
    else:
        head_term, body_term = clause, None

    if not isinstance(head_term, (Atom, Struct)):
        raise NotDatalog(f"non-callable head {head_term!r}")
    head = _literal_from_term(head_term, varmap)
    if head.negated:  # pragma: no cover - unreachable via parser
        raise NotDatalog("negated head")

    body: List[Literal] = []
    if body_term is not None:
        goals: List[Term] = []
        _flatten_body(body_term, goals)
        for goal in goals:
            if isinstance(goal, Struct) and goal.indicator in _NEGATION:
                inner = goal.args[0]
                if isinstance(inner, Var):
                    raise NotDatalog("negated metacall through a variable")
                body.append(_literal_from_term(inner, varmap, negated=True))
            elif isinstance(goal, Var):
                raise NotDatalog("metacall through a variable")
            else:
                body.append(_literal_from_term(goal, varmap))
    return Rule(head, tuple(body))


def rules_from_clauses(clauses: Sequence[Term]) -> List[Rule]:
    """Extract a whole clause set; raises on the first non-Datalog
    clause (a procedure is in or out as a unit)."""
    return [rule_from_clause(c) for c in clauses]


def range_restriction_violation(rule: Rule) -> Optional[str]:
    """The first safety violation in *rule*, or None when safe."""
    positive_vars: Set[str] = set()
    for literal in rule.positives:
        positive_vars |= literal.var_names()
    for var in rule.head.var_names() - positive_vars:
        return (f"head variable {var} of {indicator_str(rule.head.pred)} "
                "is not bound by a positive body literal")
    for literal in rule.negatives:
        for var in literal.var_names() - positive_vars:
            return (f"variable {var} of negated {indicator_str(literal.pred)}"
                    " is not bound by a positive body literal")
    return None


# =====================================================================
# Program analysis: dependencies, recursion, stratification
# =====================================================================

@dataclass
class Analysis:
    """Everything the strategy planner needs to know about the
    extracted program: which procedures are evaluable, why the rest are
    blocked, which are recursive, and the stratification."""

    #: successfully extracted rule sets (Datalog-shaped procedures)
    rules: Dict[Indicator, List[Rule]] = field(default_factory=dict)
    #: facts-mode relations the rules reference
    edb: Set[Indicator] = field(default_factory=set)
    #: procedures the bottom-up evaluator may own
    evaluable: Set[Indicator] = field(default_factory=set)
    #: indicator → human-readable reason it cannot run bottom-up
    blocked: Dict[Indicator, str] = field(default_factory=dict)
    #: evaluable indicator → stratum number (0-based, bottom first)
    strata: Dict[Indicator, int] = field(default_factory=dict)
    #: members of a recursive SCC (including self-recursion)
    recursive: Set[Indicator] = field(default_factory=set)

    def dependencies(self, ind: Indicator) -> Set[Indicator]:
        """IDB+EDB closure reachable from *ind* (including itself)."""
        seen: Set[Indicator] = set()
        stack = [ind]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for rule in self.rules.get(current, ()):
                for literal in rule.body:
                    stack.append(literal.pred)
        return seen

    def strata_of(self, ind: Indicator) -> List[List[Indicator]]:
        """The evaluable dependency closure of *ind*, grouped by
        stratum (bottom stratum first, EDB relations excluded)."""
        deps = [d for d in self.dependencies(ind) if d in self.strata]
        by_level: Dict[int, List[Indicator]] = {}
        for dep in deps:
            by_level.setdefault(self.strata[dep], []).append(dep)
        return [sorted(by_level[level]) for level in sorted(by_level)]


def _tarjan_sccs(graph: Dict[Indicator, Set[Indicator]]
                 ) -> List[List[Indicator]]:
    """Iterative Tarjan; returns SCCs in reverse topological order."""
    index: Dict[Indicator, int] = {}
    low: Dict[Indicator, int] = {}
    on_stack: Set[Indicator] = set()
    stack: List[Indicator] = []
    sccs: List[List[Indicator]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, edges = work[-1]
            advanced = False
            for succ in edges:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: List[Indicator] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def stratify(rules: Dict[Indicator, List[Rule]]
             ) -> Tuple[Optional[Dict[Indicator, int]],
                        Set[Indicator], Optional[str]]:
    """Stratification of an extracted rule set.

    Returns ``(strata, recursive, error)``: *strata* maps each rule
    predicate to its stratum (None when unstratifiable), *recursive*
    holds members of cyclic SCCs, *error* names the offending negation
    when stratification fails.
    """
    graph: Dict[Indicator, Set[Indicator]] = {ind: set() for ind in rules}
    negative: Set[Tuple[Indicator, Indicator]] = set()
    for ind, rule_list in rules.items():
        for rule in rule_list:
            for literal in rule.body:
                if literal.pred in rules:
                    graph[ind].add(literal.pred)
                    if literal.negated:
                        negative.add((ind, literal.pred))

    sccs = _tarjan_sccs(graph)
    scc_of: Dict[Indicator, int] = {}
    for i, scc in enumerate(sccs):
        for member in scc:
            scc_of[member] = i

    recursive: Set[Indicator] = set()
    for scc in sccs:
        if len(scc) > 1:
            recursive.update(scc)
        elif scc[0] in graph[scc[0]]:
            recursive.add(scc[0])

    for caller, callee in negative:
        if scc_of[caller] == scc_of[callee]:
            return (None, recursive,
                    f"{indicator_str(caller)} depends on its own negation "
                    f"through {indicator_str(callee)}")

    # Tarjan emits SCCs in reverse topological order: dependencies
    # first, so one pass assigns every stratum.
    scc_level: Dict[int, int] = {}
    for i, scc in enumerate(sccs):
        level = 0
        members = set(scc)
        for member in scc:
            for callee in graph[member]:
                if callee in members:
                    continue
                step = 1 if (member, callee) in negative else 0
                level = max(level, scc_level[scc_of[callee]] + step)
        scc_level[i] = level
    strata = {ind: scc_level[scc_of[ind]] for ind in rules}
    return strata, recursive, None


def analyze(clause_map: Dict[Indicator, Sequence[Term]],
            is_edb: Callable[[Indicator], bool]) -> Analysis:
    """Full evaluability analysis of a stored clause map.

    *is_edb* answers whether an indicator is a facts-mode relation in
    the external store (the extensional database).
    """
    analysis = Analysis()

    extracted: Dict[Indicator, List[Rule]] = {}
    for ind, clauses in clause_map.items():
        try:
            rules = rules_from_clauses(clauses)
        except NotDatalog as exc:
            analysis.blocked[ind] = f"not Datalog-shaped: {exc}"
            continue
        violation = None
        for rule in rules:
            violation = range_restriction_violation(rule)
            if violation:
                break
        if violation:
            analysis.blocked[ind] = f"not range-restricted: {violation}"
            continue
        extracted[ind] = rules
    analysis.rules = extracted

    # Dependency closure: every body predicate must be extracted IDB or
    # a facts relation; blocked status propagates up the call graph.
    blocked_dep: Dict[Indicator, str] = {}
    changed = True
    while changed:
        changed = False
        for ind, rules in extracted.items():
            if ind in blocked_dep:
                continue
            for rule in rules:
                for literal in rule.body:
                    dep = literal.pred
                    if dep in extracted and dep not in blocked_dep:
                        continue
                    if dep in analysis.blocked or dep in blocked_dep:
                        blocked_dep[ind] = (
                            f"depends on blocked {indicator_str(dep)}")
                    elif dep not in extracted:
                        if is_edb(dep):
                            analysis.edb.add(dep)
                            continue
                        blocked_dep[ind] = (
                            f"depends on {indicator_str(dep)}, which is "
                            "neither an evaluable procedure nor a stored "
                            "facts relation")
                    changed = True
                    break
                if ind in blocked_dep:
                    break

    candidates = {ind: rules for ind, rules in extracted.items()
                  if ind not in blocked_dep}
    analysis.blocked.update(blocked_dep)

    strata, recursive, error = stratify(candidates)
    analysis.recursive = recursive
    if strata is None:
        # Unstratified negation poisons exactly the SCC it occurs in
        # (and everything depending on it); re-run per-SCC to keep the
        # independent parts evaluable.
        graph = {ind: {l.pred for r in rules for l in r.body
                       if l.pred in candidates}
                 for ind, rules in candidates.items()}
        sccs = _tarjan_sccs(graph)
        poisoned: Set[Indicator] = set()
        for scc in sccs:
            members = set(scc)
            bad = any(
                l.negated and l.pred in members
                for m in scc for r in candidates[m] for l in r.body)
            if bad or members & {dep for m in scc for dep in graph[m]
                                 if dep in poisoned}:
                if bad:
                    poisoned.update(members)
        # Propagate through callers.
        changed = True
        while changed:
            changed = False
            for ind, deps in graph.items():
                if ind not in poisoned and deps & poisoned:
                    poisoned.add(ind)
                    changed = True
        for ind in poisoned:
            analysis.blocked[ind] = f"unstratified negation: {error}"
        candidates = {ind: rules for ind, rules in candidates.items()
                      if ind not in poisoned}
        strata, _, error2 = stratify(candidates)
        if strata is None:  # pragma: no cover - defensive
            for ind in candidates:
                analysis.blocked[ind] = f"unstratified negation: {error2}"
            strata = {}

    analysis.evaluable = set(strata)
    analysis.strata = strata
    return analysis


# =====================================================================
# The live-session rulebase
# =====================================================================

class DatalogRulebase:
    """Surface clauses of stored rules procedures, kept beside the
    compiled code for the set-at-a-time evaluator.

    This is *live-session* state, like the store's locks and tracer: a
    checkpoint persists compiled code only, so a reopened store starts
    with an empty rulebase and recursive queries fall back to the WAM
    until their programs are stored again (a documented failure mode in
    ``docs/DATALOG.md``).  Mutated only under the store's write lock.
    """

    def __init__(self) -> None:
        self._clauses: Dict[Indicator, List[Term]] = {}
        #: bumped on every change; analysis caches key on it
        self.epoch = 0

    def set(self, ind: Indicator, clauses: Sequence[Term]) -> None:
        self._clauses[ind] = list(clauses)
        self.epoch += 1

    def add(self, ind: Indicator, clause: Term) -> None:
        """Append an asserted clause — only for procedures this
        rulebase already tracks (an untracked procedure, e.g. one
        replayed from the WAL, stays untracked and on the WAM path)."""
        if ind in self._clauses:
            self._clauses[ind].append(clause)
            self.epoch += 1

    def drop(self, ind: Indicator) -> None:
        if self._clauses.pop(ind, None) is not None:
            self.epoch += 1

    def clauses(self) -> Dict[Indicator, List[Term]]:
        """A shallow copy of the tracked clause map."""
        return {ind: list(cs) for ind, cs in self._clauses.items()}

    def __contains__(self, ind: Indicator) -> bool:
        return ind in self._clauses

    def __len__(self) -> int:
        return len(self._clauses)
