"""Semi-naive bottom-up fixpoint evaluation (ROADMAP item 4).

The evaluator runs one stratum at a time (bottom stratum first).  Inside
a stratum the classic semi-naive discipline applies: after the seed pass
(all rules against the current totals, which start empty), each
iteration re-evaluates only the *recursive* rules, once per occurrence
of a current-stratum predicate in the body, with that occurrence fed
from the previous iteration's **delta** and every other occurrence from
the accumulated **total**.  Derived tuples are deduplicated against the
total, so the fixpoint terminates exactly when an iteration derives
nothing new.

Rule bodies are compiled to trees of the existing
:mod:`repro.relational.algebra` operators:

* EDB literals are fetched once per evaluation through
  :func:`repro.relational.planner.best_access_path` (constant arguments
  become grid partial-match assignments) and cached;
* joins are :class:`~repro.relational.algebra.LookupJoin` probes against
  hash indexes that are **built once and reused across iterations** for
  anything fixed during the fixpoint (EDB relations, lower-stratum
  totals) — only delta/total indexes of the current stratum are rebuilt;
* the plan is seeded from the delta occurrence, so per-iteration work is
  proportional to the delta, not the whole EDB;
* constants, repeated variables and cross-literal equalities become
  :class:`~repro.relational.algebra.Filter` predicates, and negated
  literals (always EDB or lower-stratum, by stratification) become
  membership filters against a fixed extent set.

The caller is expected to hold the store's shared read lock for the
whole evaluation (see :class:`~repro.relational.datalog.engine.DatalogEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..algebra import CrossJoin, Filter, LookupJoin, Plan, Rows, execute
from ..planner import best_access_path
from .rules import Indicator, Literal, Rule, V, indicator_str

__all__ = ["SemiNaiveEvaluator", "FixpointStats", "PassStats"]

ConstItems = Tuple[Tuple[int, Any], ...]


@dataclass
class PassStats:
    """One semi-naive pass: how many rows entered the totals, credited
    per rule (ANALYZE renders these; docs/OBSERVABILITY.md, "Explain
    plans").  Rule ids are ``head/arity#i`` with *i* the rule's position
    in the evaluated program's rule list for that head."""

    #: stratum ordinal in evaluation order (bottom level first)
    stratum: int
    #: pass number within the stratum (0 = seed pass)
    index: int
    #: rows merged into the totals by this pass (all predicates)
    delta_rows: int
    #: new rows credited to the rule that first derived them
    per_rule: Dict[str, int]


@dataclass
class FixpointStats:
    """What one bottom-up evaluation did."""

    #: semi-naive passes across all strata (incl. each stratum's seed
    #: pass and the final empty pass that proves the fixpoint)
    iterations: int = 0
    #: strata evaluated
    strata: int = 0
    #: IDB tuples derived (deduplicated; includes magic predicates)
    facts: int = 0
    #: EDB tuples fetched into the evaluation's row cache
    edb_rows: int = 0
    #: per-stratum iteration counts, bottom stratum first
    per_stratum: List[int] = field(default_factory=list)
    #: per-pass delta row counts (their ``delta_rows`` sum to ``facts``)
    passes: List[PassStats] = field(default_factory=list)


class SemiNaiveEvaluator:
    """Evaluate an extracted (possibly magic-rewritten) rule program."""

    def __init__(self, store, rules: Dict[Indicator, List[Rule]],
                 strata: Dict[Indicator, int], tracer=None):
        self.store = store
        self.rules = rules
        self.strata = strata
        self.tracer = tracer
        self.totals: Dict[Indicator, Set[tuple]] = {
            ind: set() for ind in rules}
        self.stats = FixpointStats()
        # Fixed-for-the-fixpoint caches (EDB rows/indexes; lower-stratum
        # totals never change once their stratum completed).
        self._edb_rows_cache: Dict[Tuple[Indicator, ConstItems],
                                   List[tuple]] = {}
        self._edb_index_cache: Dict[Tuple[Indicator, int, ConstItems],
                                    Dict[Any, List[tuple]]] = {}
        self._idb_index_cache: Dict[Tuple[Indicator, int],
                                    Dict[Any, List[tuple]]] = {}

    # ------------------------------------------------------------------ run

    def run(self) -> Dict[Indicator, Set[tuple]]:
        by_level: Dict[int, List[Indicator]] = {}
        for ind, level in self.strata.items():
            by_level.setdefault(level, []).append(ind)
        for level in sorted(by_level):
            self._eval_stratum(sorted(by_level[level]))
        self.stats.strata = len(by_level)
        return self.totals

    def _eval_stratum(self, members: Sequence[Indicator]) -> None:
        scc = set(members)
        ordinal = len(self.stats.per_stratum)
        all_rules = [(ind, rule, f"{indicator_str(ind)}#{i}")
                     for ind in members
                     for i, rule in enumerate(self.rules[ind])]
        recursive = []
        for ind, rule, rid in all_rules:
            positions = [i for i, lit in enumerate(rule.body)
                         if not lit.negated and lit.pred in scc]
            if positions:
                recursive.append((ind, rule, rid, positions))

        iterations = 0
        # Seed pass: every rule against the (initially empty) totals.
        # Per-rule accounting credits a row to the first rule that
        # derived it (the membership checks that dedupe evaluation also
        # guarantee single crediting).
        delta: Dict[Indicator, Set[tuple]] = {}
        per_rule: Dict[str, int] = {}
        for ind, rule, rid in all_rules:
            total = self.totals[ind]
            dset = delta.get(ind, ())
            added = 0
            for row in self._eval_rule(rule, scc, None, None):
                if row not in total and row not in dset:
                    dset = delta.setdefault(ind, set())
                    dset.add(row)
                    added += 1
            if added:
                per_rule[rid] = per_rule.get(rid, 0) + added
        self.stats.passes.append(
            PassStats(ordinal, 0, self._merge(delta), per_rule))
        iterations += 1

        while any(delta.values()):
            new: Dict[Indicator, Set[tuple]] = {}
            per_rule = {}
            for ind, rule, rid, positions in recursive:
                total = self.totals[ind]
                pending = new.get(ind, ())
                added = 0
                for pos in positions:
                    delta_rows = delta.get(rule.body[pos].pred)
                    if not delta_rows:
                        continue
                    for row in self._eval_rule(rule, scc, pos,
                                               list(delta_rows)):
                        if row not in total and row not in pending:
                            pending = new.setdefault(ind, set())
                            pending.add(row)
                            added += 1
                if added:
                    per_rule[rid] = per_rule.get(rid, 0) + added
            self.stats.passes.append(
                PassStats(ordinal, iterations, self._merge(new), per_rule))
            delta = new
            iterations += 1

        self.stats.iterations += iterations
        self.stats.per_stratum.append(iterations)

    def _merge(self, new: Dict[Indicator, Set[tuple]]) -> int:
        merged = 0
        for ind, rows in new.items():
            self.totals[ind] |= rows
            merged += len(rows)
        self.stats.facts += merged
        return merged

    # ------------------------------------------------------ rule evaluation

    def _eval_rule(self, rule: Rule, scc: Set[Indicator],
                   delta_pos: Optional[int],
                   delta_rows: Optional[List[tuple]]) -> Iterable[tuple]:
        """One rule instantiation: delta at *delta_pos* (None for the
        seed pass), totals everywhere else.  Yields head tuples."""
        positives = [i for i, lit in enumerate(rule.body) if not lit.negated]
        # Seed the plan from the delta occurrence so per-iteration work
        # scales with the delta, not with the largest base relation; then
        # order the remaining literals greedily by join connectivity — a
        # literal sharing a variable with the rows built so far becomes an
        # index probe, one sharing none would become a cross product.
        if delta_pos is not None:
            positives.remove(delta_pos)
        ordered: List[int] = [] if delta_pos is None else [delta_pos]
        bound: Set[str] = set() if delta_pos is None \
            else set(rule.body[delta_pos].var_names())
        while positives:
            i = next((i for i in positives
                      if rule.body[i].var_names() & bound), positives[0])
            positives.remove(i)
            ordered.append(i)
            bound |= rule.body[i].var_names()

        plan: Optional[Plan] = None
        layout: Dict[str, int] = {}
        width = 0
        for i in ordered:
            lit = rule.body[i]
            is_delta = (i == delta_pos)
            plan, layout, width = self._add_literal(
                plan, layout, width, lit, scc, is_delta, delta_rows)

        if plan is None:
            plan = Rows([()], "unit")
        for lit in rule.body:
            if lit.negated:
                plan = self._add_negation(plan, layout, lit, scc)

        head_cols = []
        for arg in rule.head.args:
            if isinstance(arg, V):
                head_cols.append(("var", layout[arg.name]))
            else:
                head_cols.append(("const", arg))
        rows = execute(plan, self.tracer)
        for row in rows:
            yield tuple(row[c] if kind == "var" else c
                        for kind, c in head_cols)

    def _add_literal(self, plan: Optional[Plan], layout: Dict[str, int],
                     width: int, lit: Literal, scc: Set[Indicator],
                     is_delta: bool, delta_rows: Optional[List[tuple]]
                     ) -> Tuple[Plan, Dict[str, int], int]:
        is_edb = lit.pred not in self.rules
        consts = self._const_items(lit)
        label = lit.pred[0] + ("Δ" if is_delta else "")

        # Equality conditions this literal imposes on the combined row
        # (cross-literal shared variables, in-literal repeated variables,
        # constants for non-EDB sources — EDB rows are pre-filtered by
        # the grid assignment).
        conds: List[Tuple[str, int, Any]] = []
        join_var: Optional[str] = None
        join_pos: Optional[int] = None
        fresh: Dict[str, int] = {}
        for pos, arg in enumerate(lit.args):
            if isinstance(arg, V):
                if arg.name in layout:
                    if plan is not None and join_var is None:
                        join_var, join_pos = arg.name, pos
                    else:
                        conds.append(("eq", layout[arg.name], width + pos))
                elif arg.name in fresh:
                    conds.append(("eq", fresh[arg.name], width + pos))
                else:
                    fresh[arg.name] = width + pos
            elif not is_edb:
                conds.append(("const", width + pos, arg))

        if plan is None:
            rows = self._source_rows(lit, scc, is_delta, delta_rows, consts)
            plan = Rows(rows, label)
        elif join_var is None:
            rows = self._source_rows(lit, scc, is_delta, delta_rows, consts)
            plan = CrossJoin(plan, Rows(rows, label))
        else:
            index = self._index_for(lit, scc, is_delta, delta_rows,
                                    consts, join_pos)
            plan = LookupJoin(plan, index, layout[join_var], label)

        if conds:
            plan = Filter(plan, _combined(conds))
        layout.update(fresh)
        return plan, layout, width + lit.pred[1]

    def _add_negation(self, plan: Plan, layout: Dict[str, int],
                      lit: Literal, scc: Set[Indicator]) -> Plan:
        """``\\+ lit`` as a membership filter: by stratification the
        negated predicate's extent is already complete (EDB, or a lower
        stratum)."""
        if lit.pred in self.rules:
            extent = self.totals[lit.pred]
        else:
            extent = set(self._edb_rows(lit.pred, self._const_items(lit)))
        probe = []
        for arg in lit.args:
            if isinstance(arg, V):
                probe.append(("var", layout[arg.name]))
            else:
                probe.append(("const", arg))

        def absent(row, probe=tuple(probe), extent=extent):
            return tuple(row[c] if kind == "var" else c
                         for kind, c in probe) not in extent
        return Filter(plan, absent)

    # -------------------------------------------------------- row sources

    def _const_items(self, lit: Literal) -> ConstItems:
        return tuple((pos, arg) for pos, arg in enumerate(lit.args)
                     if not isinstance(arg, V))

    def _source_rows(self, lit: Literal, scc: Set[Indicator],
                     is_delta: bool, delta_rows: Optional[List[tuple]],
                     consts: ConstItems) -> Sequence[tuple]:
        if is_delta:
            return delta_rows or []
        if lit.pred in self.rules:
            return list(self.totals[lit.pred])
        return self._edb_rows(lit.pred, consts)

    def _edb_rows(self, ind: Indicator, consts: ConstItems) -> List[tuple]:
        """Matching EDB tuples, fetched once per evaluation through the
        access-path planner (constants → grid partial match)."""
        key = (ind, consts)
        cached = self._edb_rows_cache.get(key)
        if cached is None:
            relation = self.store.relation_of(*ind)
            rows = execute(best_access_path(relation, dict(consts)),
                           self.tracer)
            self.stats.edb_rows += len(rows)
            cached = self._edb_rows_cache[key] = rows
        return cached

    def _index_for(self, lit: Literal, scc: Set[Indicator], is_delta: bool,
                   delta_rows: Optional[List[tuple]], consts: ConstItems,
                   join_pos: int) -> Dict[Any, List[tuple]]:
        """A hash index on *join_pos* over the literal's source rows.

        EDB indexes and lower-stratum IDB indexes are fixed for the
        whole fixpoint and cached; current-stratum totals and deltas
        change every iteration, so their indexes are rebuilt from the
        live rows."""
        if not is_delta and lit.pred not in self.rules:
            key = (lit.pred, join_pos, consts)
            cached = self._edb_index_cache.get(key)
            if cached is None:
                cached = self._edb_index_cache[key] = _build_index(
                    self._edb_rows(lit.pred, consts), join_pos)
            return cached
        if (not is_delta and lit.pred in self.rules
                and lit.pred not in scc):
            key2 = (lit.pred, join_pos)
            cached = self._idb_index_cache.get(key2)
            if cached is None:
                cached = self._idb_index_cache[key2] = _build_index(
                    self.totals[lit.pred], join_pos)
            return cached
        rows = (delta_rows or []) if is_delta else self.totals[lit.pred]
        return _build_index(rows, join_pos)


def _build_index(rows: Iterable[tuple], attr: int) -> Dict[Any, List[tuple]]:
    index: Dict[Any, List[tuple]] = {}
    for row in rows:
        index.setdefault(row[attr], []).append(row)
    return index


def _combined(conds: List[Tuple[str, int, Any]]):
    """One predicate for a list of ('eq', col, col) / ('const', col, v)
    conditions over the combined row."""
    def check(row, conds=tuple(conds)):
        for kind, a, b in conds:
            if kind == "eq":
                if row[a] != row[b]:
                    return False
            elif row[a] != b:
                return False
        return True
    return check
