"""Access-path selection for the relational engine.

A deliberately small cost-based planner: it compares the number of grid
leaves (pages) each candidate access path would touch — the paper's
premise that "data base computations are bound by the transfer of data"
(§2.2) makes page count the right cost unit — and picks the cheaper of

* point/partial-match access through the grid,
* clustered full scan,

and for joins, the cheaper of hash join (one pass over both inputs) and
index nested-loop join (outer cardinality × inner probe pages).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..bang.relation import BangRelation
from .algebra import HashJoin, IndexJoin, Plan, Scan, Select


def best_access_path(relation: BangRelation,
                     assignment: Dict[int, Any]) -> Plan:
    """Select vs Scan by estimated page count."""
    if not assignment:
        return Scan(relation)
    probe_pages = relation.pages_for(assignment)
    scan_pages = relation.grid.leaf_count
    if probe_pages < scan_pages:
        return Select(relation, assignment)
    return Scan(relation)


def estimate_rows(relation: BangRelation,
                  assignment: Dict[int, Any]) -> float:
    """Crude cardinality estimate: uniform rows per touched page."""
    if not relation.grid.leaf_count:
        return 0.0
    per_page = len(relation) / relation.grid.leaf_count
    return per_page * relation.pages_for(assignment)


def plan_join(outer: Plan, outer_rows: float,
              inner: BangRelation, outer_attr: int, inner_attr: int,
              inner_assignment: Optional[Dict[int, Any]] = None) -> Plan:
    """Hash join vs index nested-loop join by page cost.

    *outer_rows* is the caller's cardinality estimate for the outer input
    (e.g. from :func:`estimate_rows`)."""
    inner_assignment = dict(inner_assignment or {})
    # Index join cost: per outer row, pages touched by one point probe.
    probe = dict(inner_assignment)
    probe[inner_attr] = _sample_value(inner, inner_attr)
    probe_pages = inner.pages_for(probe) if probe[inner_attr] is not None \
        else inner.grid.leaf_count
    index_cost = outer_rows * max(probe_pages, 1)
    # Hash join cost: one full pass over the inner.
    hash_cost = inner.grid.leaf_count
    if index_cost < hash_cost:
        return IndexJoin(outer, inner, outer_attr, inner_attr,
                         inner_assignment)
    inner_plan = best_access_path(inner, inner_assignment)
    return HashJoin(outer, inner_plan, outer_attr, inner_attr)


def _sample_value(relation: BangRelation, attr: int):
    """A representative probe value for cost estimation."""
    for row in relation.scan():
        return row[attr]
    return None
