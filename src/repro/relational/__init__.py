"""Goal-oriented relational engine (paper §2.2).

Set-at-a-time evaluation over BANG relations: selection (point, range),
projection, joins (hash and index-nested-loop) and aggregation, with a
small access-path planner.  This is the engine behind "Educe* used as a
conventional relational DBMS" in the Wisconsin experiments (Table 2a/2b),
and the goal-oriented half of the dual evaluation strategy of §4.
"""

from .algebra import (
    Aggregate,
    CrossJoin,
    Filter,
    HashJoin,
    IndexJoin,
    LookupJoin,
    Plan,
    Project,
    RangeSelect,
    Rows,
    Scan,
    Select,
    execute,
)
from .planner import best_access_path, plan_join

__all__ = [
    "Plan",
    "Scan",
    "Select",
    "RangeSelect",
    "Filter",
    "Project",
    "Rows",
    "HashJoin",
    "IndexJoin",
    "LookupJoin",
    "CrossJoin",
    "Aggregate",
    "execute",
    "best_access_path",
    "plan_join",
]
