"""Lightweight tracing spans for the Educe* runtime.

The paper's evaluation (§3.2.1, §5) is entirely counter-driven: WAM
instructions, data references, page transfers.  Counters answer *how
much* work a query did; spans answer *where* — which loader fetch, which
pre-unification pass, which page reads.  A :class:`Tracer` records a
tree of :class:`Span` objects per query:

    query
    ├─ loader.fetch            (one per cache-missed procedure load)
    │  ├─ codec.resolve        (external → internal identifier mapping)
    │  └─ preunify.filter      (head-code execution filter)
    └─ relational.execute      (set-at-a-time plans, §4)

Page-level I/O is recorded as *events* on the enclosing span rather than
as spans of its own: a simulated page access costs 28 simulated 1990 ms
but well under a microsecond of real work, so span-per-page would
distort exactly the measurements this module exists to protect.

Every span carries the *counter delta* observed across its extent (the
tracer snapshots a :class:`~repro.obs.registry.MetricsRegistry` at entry
and exit), so a span tree is a per-phase breakdown of the same work
units the cost model prices.

Design constraints:

* **Zero cost when disabled.**  Components call ``tracer.span(...)``
  unconditionally; a disabled tracer yields ``None`` without snapshotting
  or allocating a :class:`Span`.  Event emitters guard with
  ``tracer.enabled``.
* **Bounded memory.**  At most ``max_spans`` spans and
  ``max_events_per_span`` events are retained; overflow is counted in
  ``dropped_spans`` / ``Span.events_dropped``, never silently ignored.
* **No repro imports.**  This module is stdlib-only so every layer
  (``wam``, ``bang``, ``edb``, ``relational``) can import it freely.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One traced region: name, wall time, attributes, counter delta."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "children",
                 "events", "events_dropped", "counters", "start_s",
                 "wall_s")

    def __init__(self, name: str, span_id: int,
                 parent_id: Optional[int] = None,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.children: List["Span"] = []
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self.counters: Dict[str, float] = {}
        self.start_s = 0.0
        self.wall_s = 0.0

    # ------------------------------------------------------------- traversal

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every descendant span (including self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    # ---------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, Any]:
        """This span alone (children referenced by id, not inlined)."""
        out: Dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_ms": round(self.wall_s * 1000.0, 6),
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.counters:
            out["counters"] = self.counters
        if self.events:
            out["events"] = self.events
        if self.events_dropped:
            out["events_dropped"] = self.events_dropped
        return out

    def to_json_lines(self) -> List[str]:
        """One JSON object per span in the subtree, pre-order."""
        return [json.dumps(s.to_dict(), sort_keys=True, default=str)
                for s in self.walk()]

    def format_tree(self, counters: tuple = ("instr_count", "reads"),
                    indent: str = "") -> str:
        """Human-readable tree with wall time and selected counters."""
        parts = [f"{indent}{self.name}  [{self.wall_s * 1000.0:.3f} ms"]
        for key in counters:
            value = self.counters.get(key)
            if value:
                parts.append(f" {key}={value:g}")
        attr_bits = [f"{k}={v}" for k, v in self.attrs.items()]
        line = "".join(parts) + "]" + \
            (("  " + " ".join(attr_bits)) if attr_bits else "")
        lines = [line]
        if self.events:
            lines.append(f"{indent}  · {len(self.events)} events"
                         + (f" (+{self.events_dropped} dropped)"
                            if self.events_dropped else ""))
        for child in self.children:
            lines.append(child.format_tree(counters, indent + "  "))
        return "\n".join(lines)


class Tracer:
    """Records nested spans; shared by every component of one session.

    *snapshot* is a zero-argument callable returning the current merged
    counter dict (typically ``MetricsRegistry.snapshot``); when present,
    each span records the counter delta across its extent.
    """

    def __init__(self, snapshot: Optional[Callable[[], Dict]] = None,
                 enabled: bool = False,
                 max_spans: int = 100_000,
                 max_events_per_span: int = 256,
                 diff: Optional[Callable[[Dict, Dict], Dict]] = None):
        self._snapshot = snapshot
        self.enabled = enabled
        self.max_spans = max_spans
        self.max_events_per_span = max_events_per_span
        self._stack: List[Span] = []
        self.roots: List[Span] = []
        self.dropped_spans = 0
        self._next_id = 1
        self._diff = diff or _plain_diff
        #: current trace identity.  The query service mints a trace id
        #: per ticket at ``submit()`` and installs it here for the
        #: extent of the ticket's execution, so every span the session
        #: records while the ticket runs is stamped with it — one id
        #: connects the service-side ticket trace to the session-side
        #: query spans.  Stamping *every* span (not just roots) keeps
        #: spans exported standalone — JSONL lines, ``datalog.evaluate``
        #: roots drained by a replica's service — attributable to their
        #: owning ticket.
        self.trace_id: Optional[str] = None

    # ------------------------------------------------------------------ API

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Optional[Span]]:
        """Open a child span of the current span (or a new root).

        Yields the :class:`Span` (mutate ``.attrs`` freely) or ``None``
        when the tracer is disabled or over budget.
        """
        if not self.enabled:
            yield None
            return
        if self._spans_recorded() >= self.max_spans:
            self.dropped_spans += 1
            yield None
            return
        parent = self._stack[-1] if self._stack else None
        span = Span(name, self._next_id,
                    parent.span_id if parent else None, attrs)
        if self.trace_id is not None:
            span.attrs.setdefault("trace_id", self.trace_id)
        self._next_id += 1
        span.start_s = time.perf_counter()
        before = self._snapshot() if self._snapshot else None
        self._stack.append(span)
        try:
            yield span
        finally:
            span.wall_s = time.perf_counter() - span.start_s
            if before is not None:
                span.counters = {
                    k: v
                    for k, v in self._diff(self._snapshot(), before).items()
                    if v}
            # Pop *this* span even if an inner span leaked (generator
            # abandoned mid-consumption): discard anything above it.
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)

    def event(self, name: str, **attrs) -> None:
        """Attach a point event to the current span (no-op outside one)."""
        if not self.enabled or not self._stack:
            return
        span = self._stack[-1]
        if len(span.events) >= self.max_events_per_span:
            span.events_dropped += 1
            return
        event: Dict[str, Any] = {"event": name}
        event.update(attrs)
        span.events.append(event)

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def take_roots(self) -> List[Span]:
        """Drain and return the finished root spans (oldest first)."""
        roots, self.roots = self.roots, []
        return roots

    def to_json_lines(self) -> List[str]:
        """JSON-lines export of every finished root span (not drained)."""
        lines: List[str] = []
        for root in self.roots:
            lines.extend(root.to_json_lines())
        return lines

    # ------------------------------------------------------------ internals

    def _spans_recorded(self) -> int:
        return self._next_id - 1 - self.dropped_spans


class NullTracer(Tracer):
    """The default tracer: permanently disabled, shared singleton."""

    def __init__(self):
        super().__init__(enabled=False)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value) -> None:
        if value:
            raise ValueError(
                "NULL_TRACER cannot be enabled; construct a Tracer")


def _plain_diff(after: Dict, before: Dict) -> Dict[str, float]:
    """Counter delta with monotonic-reset handling (a counter that shrank
    between snapshots was reset: report what accumulated after the
    reset).  Gauge keys are handled upstream by the registry."""
    out: Dict[str, float] = {}
    for key, value in after.items():
        if not isinstance(value, (int, float)):
            continue
        prev = before.get(key, 0)
        if not isinstance(prev, (int, float)):
            prev = 0
        delta = value - prev
        out[key] = value if delta < 0 else delta
    return out


NULL_TRACER = NullTracer()
