"""Sampled WAM profiler with per-predicate cost attribution.

A :class:`WamProfiler` installed on a machine samples at two kinds of
safe point.  When a poll hook is active (the PR-3 deadline/cancel
machinery) the sampler chains onto it — the per-instruction countdown
is already being paid, so sampling rides the same boundary for free.
When no hook is installed, the sampler fires at call dispatch instead:
one guard per ``call`` keeps straight-line machines inside the 2 %
overhead budget that a per-instruction countdown would blow.  Either
way, once at least ``interval`` instructions have elapsed since the
previous sample it:

* charges the instructions and data references executed since the last
  sample to the predicate whose code is running (**exclusive** cost),
* reconstructs the call stack from the machine's continuation chain
  (``cp_code`` plus the environment chain's saved continuations) and
  charges the same delta to every predicate on it (**inclusive** cost),
* folds the stack into a flamegraph line (root;...;leaf).

Costs are attributed to predicate indicators (``name/arity``) by
mapping code-block identities to the procedures that own them; blocks
fetched from the EDB are registered at dispatch time
(:meth:`note_code`), so stored predicates are attributed like
main-memory ones.  Metacall scaffolding compiles into real (aux-named)
procedures and needs no special casing; the query driver's halt block
is recognised structurally and skipped.

Overhead contract (E15 in EXPERIMENTS.md, enforced by
``bench_instruction_mix.py --profile --smoke``):

* **off path** (no profiler, or installed-but-disabled): the
  per-instruction dispatch loop is unchanged — the only cost is one
  attribute check per ``_run`` entry and one ``None`` test per call
  dispatch — so overhead is ≤ 1 %;
* **sampling** (enabled): one due-check per call dispatch plus one
  stack walk every ``interval`` instructions, ≤ 2 % at the default
  interval.

Like the rest of :mod:`repro.obs`, this module has no repro imports
(simulated-ms pricing lazily borrows the session's CostModel only when
a report asks for it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["WamProfiler"]

#: sample after at least this many executed instructions (checked at
#: call dispatch, or at the poll boundary when a hook is installed);
#: sized with the stack-walk cost so default sampling stays within the
#: 2 % overhead budget (EXPERIMENTS.md E15)
DEFAULT_INTERVAL = 8192

#: continuation frames walked per sample before truncating
DEFAULT_MAX_DEPTH = 32

#: label cache sentinel for driver blocks that should not appear in
#: stacks (the machine's halt block)
_SKIP = ""

#: ``next_due`` value while disabled — a huge *int* (never a float:
#: the call-dispatch compare against ``instr_count`` is int-int, which
#: CPython resolves about twice as fast as int-float)
_NEVER = 1 << 62


def _is_driver(code: list) -> bool:
    """The query driver's halt block (and nothing else) is skippable."""
    return len(code) == 1 and code[0][0] == "halt_success"


class WamProfiler:
    """Low-overhead sampling profiler for one WAM machine."""

    def __init__(self, interval: int = DEFAULT_INTERVAL,
                 max_depth: int = DEFAULT_MAX_DEPTH):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = int(interval)
        self.max_depth = int(max_depth)
        self.active = False
        #: instruction count at which the next sample is due; _NEVER
        #: while disabled, so the call-dispatch hot path is a single
        #: ``instr_count >= next_due`` compare with no ``active`` load
        self.next_due: int = _NEVER
        self.machine: Optional[Any] = None

        # id(code block) -> "name/arity" (or _SKIP); the pins keep the
        # labelled blocks alive so ids cannot be recycled mid-window.
        self._labels: Dict[int, str] = {}
        self._pins: List[list] = []
        self._last: Tuple[int, int] = (0, 0)

        # accumulators --------------------------------------------------
        self.samples = 0
        self.sampled_instr = 0
        self.sampled_data_refs = 0
        self.truncated_stacks = 0
        self.unknown_blocks = 0
        #: indicator -> [excl_instr, excl_data, leaf_samples]
        self._excl: Dict[str, List[int]] = {}
        #: indicator -> [incl_instr, incl_data, stack_samples]
        self._incl: Dict[str, List[int]] = {}
        #: (root, ..., leaf) -> [samples, instr]
        self._folded: Dict[Tuple[str, ...], List[int]] = {}

    # ------------------------------------------------------------ lifecycle

    def install(self, machine) -> "WamProfiler":
        """Attach to *machine* (one machine per profiler — per-worker
        instances keep merged service snapshots double-count-free)."""
        if self.machine is not None and self.machine is not machine:
            raise ValueError("profiler is already installed on another "
                             "machine")
        if machine.profiler is not None and machine.profiler is not self:
            raise ValueError("machine already has a profiler installed")
        self.machine = machine
        machine.profiler = self
        self._last = (machine.instr_count, machine.data_refs)
        return self

    def uninstall(self) -> None:
        if self.machine is not None and self.machine.profiler is self:
            self.machine.profiler = None
        self.machine = None
        self.active = False
        self.next_due = _NEVER

    def enable(self) -> None:
        if self.machine is None:
            raise ValueError("profiler is not installed on a machine")
        self._last = (self.machine.instr_count, self.machine.data_refs)
        self.active = True
        self.next_due = self.machine.instr_count + self.interval

    def disable(self) -> None:
        self.active = False
        self.next_due = _NEVER

    def reset(self) -> None:
        """Drop all attribution (counters restart; the label cache and
        pins are released too)."""
        self.samples = 0
        self.sampled_instr = 0
        self.sampled_data_refs = 0
        self.truncated_stacks = 0
        self.unknown_blocks = 0
        self._excl.clear()
        self._incl.clear()
        self._folded.clear()
        self._labels.clear()
        del self._pins[:]
        if self.machine is not None:
            self._last = (self.machine.instr_count,
                          self.machine.data_refs)
            if self.active:
                self.next_due = self.machine.instr_count + self.interval

    # ------------------------------------------------------------- sampling

    @property
    def last_instr(self) -> int:
        """Machine instruction count at the last sample — the call
        dispatch path uses it to decide when a sample is due, which
        also carries the sample phase across ``_run`` entries."""
        return self._last[0]

    def chain(self, machine, inner):
        """The poll callable ``Machine._run`` installs while this
        profiler is active *and* a hook is already present: sample when
        a full interval has elapsed, then forward to the existing hook
        (deadline/cancel polls are never displaced, and a tighter poll
        interval never forces extra samples)."""
        def poll(m):
            if m.instr_count >= self.next_due:
                self.sample(m)
            inner(m)
        return poll

    def sample(self, machine) -> None:
        """Attribute the instructions executed since the last sample to
        the currently running predicate stack."""
        di = machine.instr_count - self._last[0]
        dd = machine.data_refs - self._last[1]
        self._last = (machine.instr_count, machine.data_refs)
        self.next_due = machine.instr_count + self.interval
        if di < 0:          # counters were reset mid-window
            di, dd = 0, 0

        # Reconstruct the stack, leaf first: the running block, the
        # current continuation, then each environment's saved
        # continuation (the caller chain).
        labels = self._labels
        stack: List[str] = []
        prev = None
        frames = 2
        code = machine.code
        cont = machine.cp_code
        env = machine.e

        label = labels.get(id(code))
        if label is None:
            label = self._relabel(machine, code)
        if label is not _SKIP:
            stack.append(label)
            prev = label

        while True:
            label = labels.get(id(cont))
            if label is None:
                label = self._relabel(machine, cont)
            if label is not _SKIP and label != prev:
                stack.append(label)
                prev = label
            if env is None:
                break
            if frames >= self.max_depth:
                self.truncated_stacks += 1
                break
            cont = env.cp_code
            env = env.prev
            frames += 1

        self.samples += 1
        self.sampled_instr += di
        self.sampled_data_refs += dd
        if not stack:
            return

        leaf = stack[0]
        cell = self._excl.get(leaf)
        if cell is None:
            cell = self._excl[leaf] = [0, 0, 0]
        cell[0] += di
        cell[1] += dd
        cell[2] += 1
        for label in set(stack):
            cell = self._incl.get(label)
            if cell is None:
                cell = self._incl[label] = [0, 0, 0]
            cell[0] += di
            cell[1] += dd
            cell[2] += 1
        key = tuple(reversed(stack))
        cell = self._folded.get(key)
        if cell is None:
            self._folded[key] = [1, di]
        else:
            cell[0] += 1
            cell[1] += di

    def note_code(self, code: list, name: str, arity: int) -> None:
        """Register an externally fetched block (the machine calls this
        from the EDB dispatch path while a profiler is installed)."""
        cid = id(code)
        if cid not in self._labels:
            self._labels[cid] = f"{name}/{arity}"
            self._pins.append(code)

    def _relabel(self, machine, code: list) -> str:
        """Resolve an unseen block: index every procedure body we have
        not labelled yet, then cache the outcome (hits and misses both,
        so each block is scanned for at most once)."""
        labels = self._labels
        for proc in machine.procedures.values():
            body = proc.code
            if body is not None and id(body) not in labels:
                labels[id(body)] = f"{proc.name}/{proc.arity}"
                self._pins.append(body)
        label = labels.get(id(code))
        if label is None:
            label = _SKIP if _is_driver(code) else "?"
            if label == "?":
                self.unknown_blocks += 1
            labels[id(code)] = label
            self._pins.append(code)
        return label

    # ------------------------------------------------------------- reports

    def counters(self) -> Dict[str, int]:
        """``profiler_*`` counters (merged into the owning machine's
        snapshot; docs/OBSERVABILITY.md glossary)."""
        return {
            "profiler_samples": self.samples,
            "profiler_sampled_instr": self.sampled_instr,
            "profiler_sampled_data_refs": self.sampled_data_refs,
            "profiler_truncated_stacks": self.truncated_stacks,
            "profiler_unknown_blocks": self.unknown_blocks,
        }

    def attribution(self, cost_model=None) -> List[Dict[str, Any]]:
        """Per-predicate costs, heaviest exclusive first.

        Each record carries exclusive/inclusive instructions, data
        references and sample counts, plus simulated milliseconds
        priced by *cost_model* (default: the stock CostModel)."""
        model = cost_model or _default_cost_model()
        out = []
        for pred, excl in self._excl.items():
            incl = self._incl.get(pred, [0, 0, 0])
            out.append({
                "predicate": pred,
                "excl_instr": excl[0], "excl_data_refs": excl[1],
                "excl_samples": excl[2],
                "incl_instr": incl[0], "incl_data_refs": incl[1],
                "incl_samples": incl[2],
                "excl_ms": model.cpu_ms({"instr_count": excl[0],
                                         "data_refs": excl[1]}),
                "incl_ms": model.cpu_ms({"instr_count": incl[0],
                                         "data_refs": incl[1]}),
            })
        # inclusive-only predicates (never sampled as the leaf)
        for pred, incl in self._incl.items():
            if pred not in self._excl:
                out.append({
                    "predicate": pred,
                    "excl_instr": 0, "excl_data_refs": 0,
                    "excl_samples": 0,
                    "incl_instr": incl[0], "incl_data_refs": incl[1],
                    "incl_samples": incl[2],
                    "excl_ms": 0.0,
                    "incl_ms": model.cpu_ms({"instr_count": incl[0],
                                             "data_refs": incl[1]}),
                })
        out.sort(key=lambda r: (-r["excl_instr"], -r["incl_instr"],
                                r["predicate"]))
        return out

    def folded(self) -> List[str]:
        """Folded-stack (flamegraph) lines: ``root;...;leaf N`` where N
        is the sample count — ``flamegraph.pl``-compatible."""
        return [f"{';'.join(stack)} {cell[0]}"
                for stack, cell in sorted(self._folded.items())]

    def report(self, cost_model=None) -> Dict[str, Any]:
        """JSON-able report: attribution + folded stacks + counters."""
        return {
            "kind": "wam_profile",
            "interval": self.interval,
            "predicates": self.attribution(cost_model),
            "folded": self.folded(),
            "counters": self.counters(),
        }

    def to_json_lines(self) -> List[str]:
        """One header line plus one line per predicate — the shape
        ``benchmarks/report.py --diff`` consumes."""
        import json
        report = self.report()
        preds = report.pop("predicates")
        lines = [json.dumps(report, sort_keys=True)]
        for rec in preds:
            rec = dict(rec, kind="wam_profile_pred")
            lines.append(json.dumps(rec, sort_keys=True))
        return lines

    def format(self, top: int = 10, cost_model=None) -> str:
        """Human-readable attribution table (the REPL's ``:profile``)."""
        rows = self.attribution(cost_model)
        lines = [f"samples: {self.samples}  "
                 f"instr: {self.sampled_instr}  "
                 f"data refs: {self.sampled_data_refs}  "
                 f"interval: {self.interval}"]
        if not rows:
            lines.append("(no samples attributed — run a longer query "
                         "or lower the interval)")
            return "\n".join(lines)
        lines.append(f"{'predicate':<24} {'excl instr':>10} "
                     f"{'excl %':>7} {'incl instr':>10} "
                     f"{'excl ms':>9} {'samples':>8}")
        total = self.sampled_instr or 1
        for rec in rows[:top]:
            lines.append(
                f"{rec['predicate']:<24} {rec['excl_instr']:>10} "
                f"{rec['excl_instr'] / total:>7.1%} "
                f"{rec['incl_instr']:>10} {rec['excl_ms']:>9.3f} "
                f"{rec['excl_samples']:>8}")
        if len(rows) > top:
            lines.append(f"... {len(rows) - top} more predicates")
        return "\n".join(lines)


def _default_cost_model():
    from ..engine.stats import CostModel
    return CostModel()
