"""The flight recorder: a bounded, lock-striped ring of runtime events.

Counters say how much work happened and spans say where a single query
spent its time, but neither answers the operator's question after an
incident: *what happened, in order, just before things went wrong?*
The :class:`EventRing` is that answer — a fixed-size ring of small
structured events (ticket admissions and terminal states, deadline
expiries, cancellations, buffer evictions, WAL poisoning, recovery,
slow queries) that every layer can append to cheaply and the service's
``telemetry()`` aggregate exposes as a tail.

Design constraints, mirroring :mod:`repro.obs.tracing`:

* **Bounded memory** — each of the ``stripes`` deques has a hard
  ``maxlen``; the ring as a whole can never hold more than
  ``capacity`` events.  Overflow silently drops the *oldest* events of
  a stripe (that is what a flight recorder is) but counts the drops in
  ``events_dropped``.
* **Thread-safe, low contention** — events land in a stripe picked by
  the recording thread's ident, each stripe under its own lock, so
  concurrent workers rarely serialize on the recorder.  A global
  monotone sequence number (``itertools.count`` — atomic under
  CPython) gives :meth:`tail` a total order to sort by.
* **Near-free when disabled** — :data:`NULL_EVENTS` answers
  ``enabled = False`` and its :meth:`record` returns immediately; hot
  paths guard with ``if events.enabled`` exactly like tracer events.
* **No repro imports** — stdlib-only, importable from any layer.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["EventRing", "NULL_EVENTS"]


class EventRing:
    """Bounded, lock-striped ring buffer of structured events."""

    def __init__(self, capacity: int = 1024, stripes: int = 8,
                 enabled: bool = True):
        if capacity < 1:
            raise ValueError("event ring needs a positive capacity")
        stripes = max(1, min(stripes, capacity))
        per_stripe = -(-capacity // stripes)  # ceil: bound is >= capacity
        self.capacity = per_stripe * stripes
        self.enabled = enabled
        self._seq = itertools.count(1)
        self._stripes = [
            {"lock": threading.Lock(),
             "events": deque(maxlen=per_stripe),
             "recorded": 0,
             "dropped": 0}
            for _ in range(stripes)
        ]

    # ------------------------------------------------------------- recording

    def record(self, kind: str, **attrs: Any) -> None:
        """Append one event; *attrs* must be small, plain values."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "seq": next(self._seq),
            "ts": time.time(),
            "kind": kind,
        }
        if attrs:
            event.update(attrs)
        stripe = self._stripes[
            threading.get_ident() % len(self._stripes)]
        with stripe["lock"]:
            events = stripe["events"]
            if len(events) == events.maxlen:
                stripe["dropped"] += 1
            events.append(event)
            stripe["recorded"] += 1

    # --------------------------------------------------------------- reading

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent *n* events (all retained events when None),
        oldest first, totally ordered by sequence number."""
        merged: List[Dict[str, Any]] = []
        for stripe in self._stripes:
            with stripe["lock"]:
                merged.extend(stripe["events"])
        merged.sort(key=lambda event: event["seq"])
        if n is not None and n >= 0:
            merged = merged[len(merged) - min(n, len(merged)):]
        return merged

    def __len__(self) -> int:
        return sum(len(stripe["events"]) for stripe in self._stripes)

    def clear(self) -> None:
        for stripe in self._stripes:
            with stripe["lock"]:
                stripe["events"].clear()

    # -------------------------------------------------------------- counters

    def counters(self) -> Dict[str, int]:
        return {
            "events_recorded": sum(s["recorded"] for s in self._stripes),
            "events_dropped": sum(s["dropped"] for s in self._stripes),
        }


class _NullEventRing(EventRing):
    """Permanently disabled shared singleton (cannot be enabled)."""

    def __init__(self):
        super().__init__(capacity=1, stripes=1, enabled=False)

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value) -> None:
        if value:
            raise ValueError(
                "NULL_EVENTS cannot be enabled; construct an EventRing")


NULL_EVENTS = _NullEventRing()
