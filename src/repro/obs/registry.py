"""The metrics registry: one namespace for every work counter.

Before this module existed, counters were scattered: the WAM kept
instruction and data-reference tallies (§3.2.1), the dynamic loader
counted fetches and cache hits (§3.1), the pager counted page transfers
(§2.2), and callers glued them together ad hoc with
``merge_counters``/``diff_counters``.  The registry subsumes that glue
behind a single snapshot/diff API:

* **sources** — any object with ``counters()`` and/or ``io_counters()``
  (machines, loaders, pagers, sessions, baselines) can be attached; its
  counters appear in every snapshot under their existing names, so all
  call sites and the :class:`~repro.engine.stats.CostModel` pricing keep
  working unchanged;
* **own metrics** — components may also increment named counters, set
  gauges, or observe histogram values directly on the registry;
* **snapshot / diff** — ``snapshot()`` returns one merged dict;
  ``diff(after, before)`` is counter/gauge aware: monotonic counters
  that shrank are treated as *reset* (the delta is what accumulated
  after the reset), while gauges (levels such as ``buffer_resident``)
  report their current value, since "delta of a level" is meaningless.

Every counter name that can appear in a snapshot is documented in
``docs/OBSERVABILITY.md``; ``tests/test_docs.py`` enforces that the
glossary cannot rot.

This module is stdlib-only (no repro imports) so any layer may use it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Gauge keys exposed by the built-in sources (levels, not event counts).
#: Attach-time ``gauges=`` extends this per source; see the glossary.
DEFAULT_GAUGE_KEYS = frozenset({
    "pages", "buffer_resident", "heap_high_water", "pages_quarantined",
    "buffer_pinned", "loader_cache_entries", "store_mutations",
    "service_queue_depth", "service_queue_depth_peak", "service_inflight",
    "service_workers",
})

#: Default bucket boundaries for duration histograms, in milliseconds —
#: a geometric ladder from 50 µs to 10 s.  Observations above the last
#: boundary land in the implicit ``+Inf`` bucket.
DEFAULT_BOUNDARIES: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Percentiles every histogram reports (``.p50``/``.p90``/``.p99``).
PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
)


class Histogram:
    """Fixed-boundary bucket histogram (count/sum/min/max + percentiles).

    Observations are tallied into buckets delimited by *boundaries*
    (ascending; an implicit ``+Inf`` bucket catches the overflow), so
    percentile estimates survive merging: two snapshots merge by adding
    bucket counts, never by averaging quantiles — the tails stay tails.
    A percentile estimate is the upper boundary of the bucket holding
    that rank, clamped into ``[min, max]``.
    """

    __slots__ = ("count", "total", "min", "max", "boundaries", "buckets")

    def __init__(self, boundaries: Optional[Sequence[float]] = None):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.boundaries: Tuple[float, ...] = tuple(
            DEFAULT_BOUNDARIES if boundaries is None else boundaries)
        #: per-bucket observation counts; ``buckets[-1]`` is ``+Inf``
        self.buckets: List[int] = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.buckets[bisect_left(self.boundaries, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                upper = (self.boundaries[i] if i < len(self.boundaries)
                         else self.max)
                return _clamp(upper, self.min, self.max)
        return self.max  # pragma: no cover - defensive

    def merge_from(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram (same
        boundary ladder required for exact bucket merging)."""
        self.count += other.count
        self.total += other.total
        self.min = _opt_min(self.min, other.min)
        self.max = _opt_max(self.max, other.max)
        if self.boundaries == other.boundaries:
            for i, n in enumerate(other.buckets):
                self.buckets[i] += n
        else:  # mismatched ladders: conservative — overflow bucket
            self.buckets[-1] += other.count

    def copy(self) -> "Histogram":
        dup = Histogram(self.boundaries)
        dup.count, dup.total = self.count, self.total
        dup.min, dup.max = self.min, self.max
        dup.buckets = list(self.buckets)
        return dup

    def as_dict(self, prefix: str) -> Dict[str, float]:
        """Snapshot keys: ``.count``/``.sum`` always; ``.min``/``.max``,
        percentiles and cumulative ``.bucket.le_*`` keys once non-empty
        (the bucket keys are what make merged snapshots re-derivable)."""
        out = {f"{prefix}.count": self.count, f"{prefix}.sum": self.total}
        if self.count:
            out[f"{prefix}.min"] = self.min
            out[f"{prefix}.max"] = self.max
            for label, q in PERCENTILES:
                out[f"{prefix}.{label}"] = self.percentile(q)
            cumulative = 0
            for i, bound in enumerate(self.boundaries):
                cumulative += self.buckets[i]
                out[f"{prefix}.bucket.le_{bound:g}"] = cumulative
            out[f"{prefix}.bucket.le_inf"] = cumulative + self.buckets[-1]
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms plus attached counter sources."""

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: List[Any] = []
        self._gauge_keys = set(DEFAULT_GAUGE_KEYS)

    # -------------------------------------------------------------- sources

    def attach(self, source: Any,
               gauges: Iterable[str] = ()) -> Any:
        """Register a counter source (``counters()``/``io_counters()``).

        *gauges* names keys of this source that are levels rather than
        monotonic counters, so :meth:`diff` reports them correctly.
        Returns *source* for chaining.
        """
        if source not in self._sources:
            self._sources.append(source)
        self._gauge_keys.update(gauges)
        return source

    def detach(self, source: Any) -> None:
        if source in self._sources:
            self._sources.remove(source)

    # ---------------------------------------------------------- own metrics

    def inc(self, name: str, delta: float = 1) -> float:
        value = self._counters.get(name, 0) + delta
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value
        self._gauge_keys.add(name)

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    # ------------------------------------------------------- snapshot/diff

    def snapshot(self) -> Dict[str, float]:
        """Every metric this registry can see, merged into one dict.

        Source counters are *summed* when two sources emit the same key
        (exactly the old ``merge_counters`` contract); gauges and
        histogram summaries are included under their own names.  A
        source may also expose ``histograms()`` (name →
        :class:`Histogram`); same-named histograms from different
        sources merge bucket-wise, so percentiles in the snapshot are
        computed over the union of observations, never averaged.
        """
        merged: Dict[str, float] = {}
        hist_maps: List[Dict[str, Histogram]] = []
        for source in self._sources:
            if hasattr(source, "counters"):
                _merge_into(merged, source.counters())
            if hasattr(source, "io_counters"):
                _merge_into(merged, source.io_counters())
            if hasattr(source, "histograms"):
                hist_maps.append(source.histograms())
        _merge_into(merged, self._counters)
        merged.update(self._gauges)
        if self._histograms:
            hist_maps.append(self._histograms)
        for name, hist in merge_histogram_maps(*hist_maps).items():
            if hist.count:
                merged.update(hist.as_dict(name))
        return merged

    def diff(self, after: Dict[str, float],
             before: Dict[str, float]) -> Dict[str, float]:
        """Counter-aware delta between two snapshots.

        * monotonic counter, grew: ordinary difference;
        * monotonic counter, shrank: it was **reset** between the
          snapshots — report its post-reset accumulation (``after``);
        * gauge (registered via :meth:`attach`/:meth:`gauge`): report
          the ``after`` level;
        * key only in *before* (source detached / disappeared): omitted;
        * histogram family (``X.count``/``X.sum``/``X.bucket.le_*``...):
          counts, sums and buckets diff like counters, percentiles are
          **recomputed from the bucket deltas** (the distribution of
          observations made between the snapshots), and a family with
          no new observations is dropped entirely.
        """
        out: Dict[str, float] = {}
        for key, value in after.items():
            if not isinstance(value, (int, float)):
                continue
            if key in self._gauge_keys:
                out[key] = value
                continue
            prev = before.get(key, 0)
            if not isinstance(prev, (int, float)):
                prev = 0
            delta = value - prev
            out[key] = value if delta < 0 else delta
        _fix_histogram_families(out, minmax_from=after)
        return out

    @staticmethod
    def merge(*snapshots: Dict[str, float]) -> Dict[str, float]:
        """Sum several snapshots key-wise (the ``merge_counters``
        contract: non-numeric values are skipped).  Histogram families
        are merged structurally: bucket counts and sums add, ``.min``/
        ``.max`` take the extremes across the snapshots, and the
        percentile keys are recomputed from the merged buckets — the
        tails of the distribution are preserved, not averaged away."""
        merged: Dict[str, float] = {}
        for snap in snapshots:
            _merge_into(merged, snap)
        for base in _histogram_families(merged):
            mins = [s[f"{base}.min"] for s in snapshots
                    if isinstance(s.get(f"{base}.min"), (int, float))]
            maxes = [s[f"{base}.max"] for s in snapshots
                     if isinstance(s.get(f"{base}.max"), (int, float))]
            if mins:
                merged[f"{base}.min"] = min(mins)
            if maxes:
                merged[f"{base}.max"] = max(maxes)
            _recompute_percentiles(merged, base)
        return merged

    # --------------------------------------------------------------exports

    def gauge_keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._gauge_keys))


def _merge_into(target: Dict[str, float], source: Dict[str, Any]) -> None:
    for key, value in source.items():
        if isinstance(value, (int, float)):
            target[key] = target.get(key, 0) + value


# ------------------------------------------------- histogram-family helpers

def merge_histogram_maps(
        *maps: Dict[str, Histogram]) -> Dict[str, Histogram]:
    """Merge ``{name: Histogram}`` maps; same-named histograms are
    folded together bucket-wise.  Histograms unique to one map are
    returned as-is (no copy) — callers must not mutate the result."""
    if len(maps) == 1:
        return maps[0]
    out: Dict[str, Histogram] = {}
    for hist_map in maps:
        for name, hist in hist_map.items():
            seen = out.get(name)
            if seen is None:
                out[name] = hist
            else:
                merged = seen.copy()
                merged.merge_from(hist)
                out[name] = merged
    return out


def _histogram_families(snapshot: Dict[str, Any]) -> List[str]:
    """Base names ``X`` whose snapshot keys form a histogram family
    (both ``X.count`` and ``X.sum`` present)."""
    return [key[:-6] for key in snapshot
            if key.endswith(".count") and f"{key[:-6]}.sum" in snapshot]


_FAMILY_SUFFIXES = (".count", ".sum", ".min", ".max",
                    ".p50", ".p90", ".p99")


def _family_keys(snapshot: Dict[str, Any], base: str) -> List[str]:
    keys = [f"{base}{suffix}" for suffix in _FAMILY_SUFFIXES
            if f"{base}{suffix}" in snapshot]
    bucket_prefix = f"{base}.bucket.le_"
    keys.extend(k for k in snapshot if k.startswith(bucket_prefix))
    return keys


def _recompute_percentiles(snapshot: Dict[str, float], base: str) -> None:
    """Overwrite ``base.p50/.p90/.p99`` from the family's cumulative
    bucket counts (no-op when the family carries no buckets)."""
    bucket_prefix = f"{base}.bucket.le_"
    pairs: List[Tuple[float, float]] = []
    for key, value in snapshot.items():
        if key.startswith(bucket_prefix):
            label = key[len(bucket_prefix):]
            bound = float("inf") if label == "inf" else float(label)
            pairs.append((bound, value))
    if not pairs:
        return
    pairs.sort()
    total = pairs[-1][1]
    if total <= 0:
        return
    lo = snapshot.get(f"{base}.min")
    hi = snapshot.get(f"{base}.max")
    for label, q in PERCENTILES:
        rank = q * total
        estimate = hi
        for bound, cumulative in pairs:
            if cumulative >= rank:
                estimate = hi if bound == float("inf") else bound
                break
        if estimate is not None:
            snapshot[f"{base}.{label}"] = _clamp(estimate, lo, hi)


def _fix_histogram_families(out: Dict[str, float],
                            minmax_from: Dict[str, Any]) -> None:
    """Post-pass for :meth:`MetricsRegistry.diff`: drop families with no
    new observations, otherwise take min/max from the *after* snapshot
    and recompute percentiles from the bucket deltas."""
    for base in _histogram_families(out):
        if not out.get(f"{base}.count"):
            for key in _family_keys(out, base):
                out.pop(key, None)
            continue
        for suffix in (".min", ".max"):
            value = minmax_from.get(f"{base}{suffix}")
            if isinstance(value, (int, float)):
                out[f"{base}{suffix}"] = value
        _recompute_percentiles(out, base)


def _clamp(value: float, lo: Optional[float], hi: Optional[float]) -> float:
    if lo is not None and value < lo:
        return lo
    if hi is not None and value > hi:
        return hi
    return value


def _opt_min(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)
