"""The metrics registry: one namespace for every work counter.

Before this module existed, counters were scattered: the WAM kept
instruction and data-reference tallies (§3.2.1), the dynamic loader
counted fetches and cache hits (§3.1), the pager counted page transfers
(§2.2), and callers glued them together ad hoc with
``merge_counters``/``diff_counters``.  The registry subsumes that glue
behind a single snapshot/diff API:

* **sources** — any object with ``counters()`` and/or ``io_counters()``
  (machines, loaders, pagers, sessions, baselines) can be attached; its
  counters appear in every snapshot under their existing names, so all
  call sites and the :class:`~repro.engine.stats.CostModel` pricing keep
  working unchanged;
* **own metrics** — components may also increment named counters, set
  gauges, or observe histogram values directly on the registry;
* **snapshot / diff** — ``snapshot()`` returns one merged dict;
  ``diff(after, before)`` is counter/gauge aware: monotonic counters
  that shrank are treated as *reset* (the delta is what accumulated
  after the reset), while gauges (levels such as ``buffer_resident``)
  report their current value, since "delta of a level" is meaningless.

Every counter name that can appear in a snapshot is documented in
``docs/OBSERVABILITY.md``; ``tests/test_docs.py`` enforces that the
glossary cannot rot.

This module is stdlib-only (no repro imports) so any layer may use it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Gauge keys exposed by the built-in sources (levels, not event counts).
#: Attach-time ``gauges=`` extends this per source; see the glossary.
DEFAULT_GAUGE_KEYS = frozenset({
    "pages", "buffer_resident", "heap_high_water", "pages_quarantined",
    "buffer_pinned", "loader_cache_entries", "store_mutations",
    "service_queue_depth", "service_workers",
})


class Histogram:
    """Streaming summary of observed values (count/sum/min/max)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self, prefix: str) -> Dict[str, float]:
        out = {f"{prefix}.count": self.count, f"{prefix}.sum": self.total}
        if self.count:
            out[f"{prefix}.min"] = self.min
            out[f"{prefix}.max"] = self.max
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms plus attached counter sources."""

    def __init__(self):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: List[Any] = []
        self._gauge_keys = set(DEFAULT_GAUGE_KEYS)

    # -------------------------------------------------------------- sources

    def attach(self, source: Any,
               gauges: Iterable[str] = ()) -> Any:
        """Register a counter source (``counters()``/``io_counters()``).

        *gauges* names keys of this source that are levels rather than
        monotonic counters, so :meth:`diff` reports them correctly.
        Returns *source* for chaining.
        """
        if source not in self._sources:
            self._sources.append(source)
        self._gauge_keys.update(gauges)
        return source

    def detach(self, source: Any) -> None:
        if source in self._sources:
            self._sources.remove(source)

    # ---------------------------------------------------------- own metrics

    def inc(self, name: str, delta: float = 1) -> float:
        value = self._counters.get(name, 0) + delta
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value
        self._gauge_keys.add(name)

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    # ------------------------------------------------------- snapshot/diff

    def snapshot(self) -> Dict[str, float]:
        """Every metric this registry can see, merged into one dict.

        Source counters are *summed* when two sources emit the same key
        (exactly the old ``merge_counters`` contract); gauges and
        histogram summaries are included under their own names.
        """
        merged: Dict[str, float] = {}
        for source in self._sources:
            if hasattr(source, "counters"):
                _merge_into(merged, source.counters())
            if hasattr(source, "io_counters"):
                _merge_into(merged, source.io_counters())
        _merge_into(merged, self._counters)
        merged.update(self._gauges)
        for name, hist in self._histograms.items():
            merged.update(hist.as_dict(name))
        return merged

    def diff(self, after: Dict[str, float],
             before: Dict[str, float]) -> Dict[str, float]:
        """Counter-aware delta between two snapshots.

        * monotonic counter, grew: ordinary difference;
        * monotonic counter, shrank: it was **reset** between the
          snapshots — report its post-reset accumulation (``after``);
        * gauge (registered via :meth:`attach`/:meth:`gauge`): report
          the ``after`` level;
        * key only in *before* (source detached / disappeared): omitted.
        """
        out: Dict[str, float] = {}
        for key, value in after.items():
            if not isinstance(value, (int, float)):
                continue
            if key in self._gauge_keys:
                out[key] = value
                continue
            prev = before.get(key, 0)
            if not isinstance(prev, (int, float)):
                prev = 0
            delta = value - prev
            out[key] = value if delta < 0 else delta
        return out

    @staticmethod
    def merge(*snapshots: Dict[str, float]) -> Dict[str, float]:
        """Sum several snapshots key-wise (the ``merge_counters``
        contract: non-numeric values are skipped)."""
        merged: Dict[str, float] = {}
        for snap in snapshots:
            _merge_into(merged, snap)
        return merged

    # --------------------------------------------------------------exports

    def gauge_keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._gauge_keys))


def _merge_into(target: Dict[str, float], source: Dict[str, Any]) -> None:
    for key, value in source.items():
        if isinstance(value, (int, float)):
            target[key] = target.get(key, 0) + value
