"""EXPLAIN/ANALYZE plan trees (docs/OBSERVABILITY.md, "Explain plans").

Since the strategy planner (PR 6) and the optimizing backend (PR 8) the
engine holds three ways to answer a goal — naive WAM, optimized WAM,
semi-naive Datalog with magic sets — and until now only whole-run
counters said which one ran.  This module is the *presentation layer*
for per-query plans:

* :class:`PlanNode` / :class:`ExplainPlan` — a small operator tree with
  static attributes (``attrs``, what the planner decided and why) and,
  in ANALYZE mode, measured ones (``actual``: counter deltas, per-pass
  fixpoint delta row counts, answers, wall time);
* :func:`code_shape` — the optimizer-visible shape of one compiled
  block (instruction count, fused superinstructions, ``switch_on_arg``
  guards, choice instructions);
* :func:`attach_fixpoint` — folds a semi-naive evaluation's
  :class:`~repro.relational.datalog.seminaive.PassStats` records into
  the matching ``stratum``/``rule`` nodes of a plan.

The tree is *built* by the layers that own the facts —
:meth:`DatalogEngine.explain_plan` for the bottom-up subtree,
:meth:`EduceStar.explain`/:meth:`~EduceStar.analyze` for the whole
query — so this module stays free of repro imports (any layer may use
it, like :mod:`.tracing`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["PlanNode", "ExplainPlan", "code_shape", "attach_fixpoint",
           "FUSED_OPS"]

#: superinstructions the peephole pass can emit (docs/OPTIMIZER.md)
FUSED_OPS = ("get_constants", "unify_constants", "get_list_vv",
             "put_args")

#: choice instructions counted as the block's nondeterminism shape
_CHOICE_OPS = ("try_me_else", "retry_me_else", "trust_me",
               "try", "retry", "trust")


class PlanNode:
    """One operator of a plan tree.

    ``op`` is the node kind (``query``, ``decision``, ``magic``,
    ``stratum``, ``rule``, ``procedure``, ``cached_block``,
    ``optimizer``), ``label`` the operand (goal text, indicator,
    adornment...), ``attrs`` the static planning facts and ``actual``
    the ANALYZE-time measurements.
    """

    __slots__ = ("op", "label", "attrs", "children", "actual")

    def __init__(self, op: str, label: str = "", **attrs: Any):
        self.op = op
        self.label = label
        self.attrs: Dict[str, Any] = dict(attrs)
        self.children: List["PlanNode"] = []
        self.actual: Dict[str, Any] = {}

    def add(self, node: "PlanNode") -> "PlanNode":
        self.children.append(node)
        return node

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, op: str) -> Optional["PlanNode"]:
        """First descendant (or self) with the given ``op``."""
        for node in self.walk():
            if node.op == op:
                return node
        return None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op}
        if self.label:
            out["label"] = self.label
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.actual:
            out["actual"] = dict(self.actual)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class ExplainPlan:
    """One query's plan tree, renderable as text or JSON.

    ``mode`` is ``"explain"`` (planning only, nothing ran) or
    ``"analyze"`` (the query ran; ``actual`` measurements attached).
    """

    __slots__ = ("goal", "mode", "root")

    def __init__(self, goal: str, mode: str, root: PlanNode):
        self.goal = goal
        self.mode = mode
        self.root = root

    @property
    def strategy(self) -> Optional[str]:
        """The strategy the planner chose (``topdown``/``bottomup``)."""
        return self.root.attrs.get("strategy")

    @property
    def executed(self) -> Optional[str]:
        """The strategy that actually ran (ANALYZE mode only)."""
        return self.root.actual.get("executed")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "explain_plan", "goal": self.goal,
                "mode": self.mode, "plan": self.root.to_dict()}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False,
                          default=str)

    def format(self) -> str:
        """Text rendering: one node per line, two-space indent, ANALYZE
        measurements on an ``actual:`` continuation line."""
        lines = [f"{self.mode.upper()} {self.goal}"]
        self._render(self.root, 0, lines)
        return "\n".join(lines)

    def _render(self, node: PlanNode, depth: int,
                lines: List[str]) -> None:
        pad = "  " * depth
        head = f"{pad}{node.op}"
        if node.label:
            head += f" {node.label}"
        if node.attrs:
            head += "  " + _format_attrs(node.attrs)
        lines.append(head)
        if node.actual:
            lines.append(f"{pad}  actual: {_format_attrs(node.actual)}")
        for child in node.children:
            self._render(child, depth + 1, lines)


def _format_attrs(attrs: Dict[str, Any]) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, str) and (" " in value or not value):
            parts.append(f'{key}="{value}"')
        elif isinstance(value, list) and len(value) > 12:
            # Per-pass lists can run to hundreds of entries; the text
            # rendering summarises them (to_json keeps full fidelity).
            head = ",".join(str(v) for v in value[:6])
            try:
                tail = f" sum={sum(value)}"
            except TypeError:
                tail = ""
            parts.append(
                f"{key}=[{head},... {len(value)} passes{tail}]")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def code_shape(code: List[tuple]) -> Dict[str, Any]:
    """The optimizer-visible shape of one compiled block.

    Duck-types on the WAM's tuple instructions (``instr[0]`` is the
    opcode name), so EXPLAIN can describe main-memory and loader-cached
    blocks without importing the machine.
    """
    counts: Dict[str, int] = {}
    for instr in code:
        op = instr[0]
        counts[op] = counts.get(op, 0) + 1
    fused = {op: counts[op] for op in FUSED_OPS if op in counts}
    shape = {
        "instructions": len(code),
        "fused": sum(fused.values()),
        "switch_on_arg": counts.get("switch_on_arg", 0),
        "choice_instrs": sum(counts.get(op, 0) for op in _CHOICE_OPS),
    }
    if fused:
        shape["fused_ops"] = fused
    return shape


def attach_fixpoint(plan: ExplainPlan, passes: List[Any],
                    derived_rows: int) -> None:
    """Fold per-pass fixpoint stats into the plan's ``stratum``/``rule``
    nodes (ANALYZE mode).

    *passes* are :class:`~repro.relational.datalog.seminaive.PassStats`
    records; ``stratum`` nodes are matched by evaluation order (the
    evaluator runs strata bottom level first, exactly the order
    :meth:`DatalogEngine.explain_plan` emits them).  The invariant the
    differential tests pin: the per-pass ``delta_rows`` sum to
    *derived_rows*, the fixpoint's total derived tuples.
    """
    strata_nodes = [n for n in plan.root.walk() if n.op == "stratum"]
    for ordinal, node in enumerate(strata_nodes):
        mine = [p for p in passes if p.stratum == ordinal]
        node.actual["passes"] = len(mine)
        node.actual["delta_rows"] = [p.delta_rows for p in mine]
        totals: Dict[str, int] = {}
        for p in mine:
            for rid, rows in p.per_rule.items():
                totals[rid] = totals.get(rid, 0) + rows
        for rnode in node.children:
            if rnode.op == "rule":
                rnode.actual["rows"] = totals.get(rnode.label, 0)
                rnode.actual["pass_rows"] = [
                    p.per_rule.get(rnode.label, 0) for p in mine]
    plan.root.actual["derived_rows"] = derived_rows
