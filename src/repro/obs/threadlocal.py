"""Thread-local counter cells for the concurrent query service.

The observability layer's counters are plain ``int`` attributes bumped
on hot paths; under the service (:mod:`repro.service`) many worker
threads bump the *service's* counters concurrently.  Guarding every
``+= 1`` with a lock would put a latch on the hottest path in the
system, so :class:`ThreadLocalCounters` gives each thread its own
private cell (a plain dict) and merges the cells only when somebody
*reads* the counters — exactly the classic striped-counter design.

The only lock is taken once per thread lifetime, when the thread's
cell is registered; increments afterwards touch thread-private state
only.  Merging reads other threads' cells without locking: dict reads
and integer loads are atomic under the interpreter, and counters are
monotone, so a racy read can only be *slightly stale*, never corrupt —
the same guarantee a relaxed atomic load gives.
"""

from __future__ import annotations

import threading
from typing import Dict, List


class ThreadLocalCounters:
    """Per-thread counter cells, merged on read.

    >>> c = ThreadLocalCounters()
    >>> c.add("service_submitted")
    >>> c.add("service_completed", 2)
    >>> c.counters()
    {'service_completed': 2, 'service_submitted': 1}
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._register = threading.Lock()
        # Every cell ever created, including cells of threads that have
        # exited — their totals must survive the thread.
        self._cells: List[Dict[str, int]] = []

    def _cell(self) -> Dict[str, int]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = {}
            with self._register:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def add(self, key: str, amount: int = 1) -> None:
        """Bump *key* in the calling thread's private cell (lock-free
        after the first call per thread)."""
        cell = self._cell()
        cell[key] = cell.get(key, 0) + amount

    def counters(self) -> Dict[str, int]:
        """Merged view over every thread's cell, keys sorted."""
        with self._register:
            cells = list(self._cells)
        merged: Dict[str, int] = {}
        for cell in cells:
            for key, value in list(cell.items()):
                merged[key] = merged.get(key, 0) + value
        return dict(sorted(merged.items()))

    def reset(self) -> None:
        """Zero every cell in place (cells stay registered)."""
        with self._register:
            cells = list(self._cells)
        for cell in cells:
            for key in list(cell):
                cell[key] = 0
