"""Prometheus-text-format exposition of metric snapshots.

A :class:`~repro.obs.registry.MetricsRegistry` snapshot is a flat dict;
this module renders any such dict (including the *merged* snapshots of
a whole :class:`~repro.service.query_service.QueryService`) in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_, with
no dependency beyond the stdlib:

* plain counters become ``# TYPE <name> counter`` samples;
* gauge keys (pass the registry's ``gauge_keys()``) become gauges;
* histogram families (``X.count``/``X.sum``/``X.bucket.le_*`` key
  groups as produced by :meth:`Histogram.as_dict`) become proper
  Prometheus histograms — cumulative ``_bucket{le="..."}`` samples plus
  ``_sum``/``_count`` — and their ``.min``/``.max``/``.p50``... keys
  are emitted as companion gauges (``X_min``, ``X_p50``, ...).

Metric names are sanitised (``.`` and any other character outside
``[a-zA-Z0-9_:]`` become ``_``) and prefixed with a namespace, so every
emitted name is valid.  ``tests/test_exposition.py`` holds a small
validating parser and asserts that rendered snapshots round-trip.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Tuple

from .registry import _family_keys, _histogram_families

__all__ = ["render_prometheus"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_PERCENTILE_SUFFIXES = ("min", "max", "p50", "p90", "p99")


def _sanitize(name: str) -> str:
    clean = _NAME_OK.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{float(value):.10g}"


def _bucket_bound_label(label: str) -> str:
    return "+Inf" if label == "inf" else f"{float(label):g}"


def render_prometheus(snapshot: Dict[str, Any],
                      namespace: str = "educe",
                      gauge_keys: Iterable[str] = ()) -> str:
    """Render *snapshot* as Prometheus text format (version 0.0.4).

    *gauge_keys* names the keys that are levels rather than monotonic
    counters (typically ``registry.gauge_keys()``); everything else
    that is not part of a histogram family is rendered as a counter.
    """
    gauges = set(gauge_keys)
    families = set(_histogram_families(snapshot))
    family_members = set()
    for base in families:
        family_members.update(_family_keys(snapshot, base))

    lines: List[str] = []
    for key in sorted(snapshot):
        value = snapshot[key]
        if key in family_members or not isinstance(value, (int, float)):
            continue
        name = _sanitize(f"{namespace}_{key}")
        kind = "gauge" if key in gauges else "counter"
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {_format_value(value)}")

    for base in sorted(families):
        name = _sanitize(f"{namespace}_{base}")
        bucket_prefix = f"{base}.bucket.le_"
        buckets: List[Tuple[float, str, Any]] = []
        for key, value in snapshot.items():
            if key.startswith(bucket_prefix):
                label = key[len(bucket_prefix):]
                bound = float("inf") if label == "inf" else float(label)
                buckets.append((bound, _bucket_bound_label(label), value))
        buckets.sort(key=lambda item: item[0])
        count = snapshot.get(f"{base}.count", 0)
        total = snapshot.get(f"{base}.sum", 0.0)
        lines.append(f"# TYPE {name} histogram")
        for _, label, value in buckets:
            lines.append(
                f'{name}_bucket{{le="{label}"}} {_format_value(value)}')
        if not any(bound == float("inf") for bound, _, _ in buckets):
            # A family with no bucket keys (empty histogram) still needs
            # the mandatory +Inf bucket to be a valid histogram.
            lines.append(f'{name}_bucket{{le="+Inf"}} '
                         f'{_format_value(count)}')
        lines.append(f"{name}_sum {_format_value(total)}")
        lines.append(f"{name}_count {_format_value(count)}")
        for suffix in _PERCENTILE_SUFFIXES:
            value = snapshot.get(f"{base}.{suffix}")
            if isinstance(value, (int, float)):
                lines.append(f"# TYPE {name}_{suffix} gauge")
                lines.append(f"{name}_{suffix} {_format_value(value)}")

    return "\n".join(lines) + "\n"
