"""Per-query profiles: span tree + counter deltas + simulated-ms breakdown.

A :class:`QueryProfile` is the unit of observability the acceptance
criteria of the paper's evaluation need: for one ``solve()`` call it
holds

* the work-counter delta (WAM instructions, data references, clauses
  fetched/delivered, page transfers, ...),
* the span tree recorded by the tracer (query → loader fetch →
  pre-unify → codec resolve, with page-I/O events),
* the simulated-1990-milliseconds breakdown from the
  :class:`~repro.engine.stats.CostModel` — the same constants that
  price the benchmark tables, so a profile and a table row can never
  disagree about what a counter costs.

Profiles export as JSON lines (one header object, then one object per
span) for offline analysis, and format as a human-readable block for
the REPL's ``:stats``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from .tracing import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.stats import CostModel


def _default_model() -> "CostModel":
    from ..engine.stats import CostModel
    return CostModel()


class QueryProfile:
    """Everything observed about one query."""

    def __init__(self, goal: str,
                 counters: Dict[str, float],
                 root: Optional[Span] = None,
                 solutions: int = 0,
                 wall_s: float = 0.0,
                 cost_model: Optional["CostModel"] = None,
                 trace_id: Optional[str] = None):
        self.goal = goal
        self.counters = dict(counters)
        self.root = root
        self.solutions = solutions
        self.wall_s = wall_s
        self.cost_model = cost_model or _default_model()
        #: service-minted trace id when the query ran as a ticket
        #: (None for standalone sessions); joins this profile to the
        #: service's ticket trace and flight-recorder events.
        self.trace_id = trace_id

    # ------------------------------------------------------------- pricing

    def cpu_ms(self) -> float:
        return self.cost_model.cpu_ms(self.counters)

    def io_ms(self) -> float:
        return self.cost_model.io_ms(self.counters)

    def total_ms(self) -> float:
        return self.cost_model.total_ms(self.counters)

    def breakdown(self) -> Dict[str, Any]:
        """Simulated-ms breakdown, per cost-model term (see the
        "Cost-model terms" table in docs/OBSERVABILITY.md)."""
        return self.cost_model.breakdown(self.counters)

    # -------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, Any]:
        """The profile header (span tree exported separately)."""
        out = {
            "kind": "query_profile",
            "goal": self.goal,
            "solutions": self.solutions,
            "wall_s": round(self.wall_s, 6),
            "counters": self.counters,
            "simulated": self.breakdown(),
            "spans": sum(1 for _ in self.root.walk()) if self.root else 0,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    def to_json_lines(self) -> List[str]:
        """One header line, then one line per span (pre-order)."""
        lines = [json.dumps(self.to_dict(), sort_keys=True, default=str)]
        if self.root is not None:
            lines.extend(self.root.to_json_lines())
        return lines

    def format(self, top: int = 8) -> str:
        """Human-readable block: headline, cost breakdown, span tree."""
        sim = self.breakdown()
        lines = [
            f"goal: {self.goal}",
            f"  solutions: {self.solutions}   wall: {self.wall_s:.4f} s   "
            f"simulated 1990: {sim['total_ms']:.2f} ms "
            f"(cpu {sim['cpu_ms']:.2f} + io {sim['io_ms']:.2f})",
        ]
        cpu_terms = [(k, v) for k, v in sim["cpu"].items() if v]
        io_terms = [(k, v) for k, v in sim["io"].items() if v]
        for label, terms in (("cpu", cpu_terms), ("io", io_terms)):
            if terms:
                body = "  ".join(f"{k}={v:.2f}" for k, v in terms)
                lines.append(f"  {label} ms: {body}")
        hot = sorted(((k, v) for k, v in self.counters.items() if v),
                     key=lambda kv: -abs(kv[1]))[:top]
        if hot:
            lines.append("  counters: " + "  ".join(
                f"{k}={v:g}" for k, v in hot))
        if self.root is not None:
            lines.append("  spans:")
            for line in self.root.format_tree().splitlines():
                lines.append("    " + line)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"QueryProfile(goal={self.goal!r}, "
                f"solutions={self.solutions}, "
                f"total_ms={self.total_ms():.2f})")


def write_json_lines(path: str, profiles: List[QueryProfile]) -> int:
    """Append the profiles to *path* as JSON lines; returns lines written."""
    lines: List[str] = []
    for profile in profiles:
        lines.extend(profile.to_json_lines())
    with open(path, "a", encoding="utf-8") as f:
        for line in lines:
            f.write(line + "\n")
    return len(lines)
