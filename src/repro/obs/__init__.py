"""repro.obs — the unified observability layer.

Three pieces, designed to be threaded through every layer of Educe*:

* :class:`~repro.obs.registry.MetricsRegistry` — one namespace for every
  work counter in the system; subsumes the ad-hoc
  ``merge_counters``/``diff_counters`` glue with a snapshot/diff API
  that understands counter resets and gauges.
* :class:`~repro.obs.tracing.Tracer` / :class:`~repro.obs.tracing.Span`
  — nested spans (query → loader fetch → pre-unify → codec resolve)
  with per-span counter deltas and page-I/O events; zero cost when
  disabled (:data:`~repro.obs.tracing.NULL_TRACER`).
* :class:`~repro.obs.profile.QueryProfile` — per-query span tree +
  counter delta + simulated-1990-ms breakdown, exportable as JSON lines.
* :class:`~repro.obs.explain.ExplainPlan` /
  :class:`~repro.obs.explain.PlanNode` — EXPLAIN/ANALYZE plan trees
  (strategy decision, magic adornment, strata/rules, optimizer code
  shape) rendered as text and JSON.
* :class:`~repro.obs.profiler.WamProfiler` — sampled instruction-poll
  profiler attributing instructions/data_refs/simulated-ms to predicate
  indicators, with folded-stack (flamegraph) export.

The counter glossary, span taxonomy and a worked profile-reading
example live in ``docs/OBSERVABILITY.md``; ``tests/test_docs.py`` keeps
that document in sync with the code.

This package never imports ``repro.engine`` at module level (the
session imports us), so any layer — ``wam``, ``bang``, ``edb``,
``relational`` — may depend on it without cycles.
"""

from .registry import (DEFAULT_BOUNDARIES, DEFAULT_GAUGE_KEYS, Histogram,
                       MetricsRegistry, merge_histogram_maps)
from .threadlocal import ThreadLocalCounters
from .tracing import NULL_TRACER, NullTracer, Span, Tracer
from .events import NULL_EVENTS, EventRing
from .explain import ExplainPlan, PlanNode, attach_fixpoint, code_shape
from .exposition import render_prometheus
from .profile import QueryProfile, write_json_lines
from .profiler import WamProfiler

__all__ = [
    "DEFAULT_BOUNDARIES",
    "DEFAULT_GAUGE_KEYS",
    "EventRing",
    "ExplainPlan",
    "Histogram",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_TRACER",
    "NullTracer",
    "PlanNode",
    "Span",
    "ThreadLocalCounters",
    "Tracer",
    "QueryProfile",
    "WamProfiler",
    "attach_fixpoint",
    "code_shape",
    "merge_histogram_maps",
    "render_prometheus",
    "write_json_lines",
]
