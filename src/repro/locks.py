"""Latches and read-write locks for the concurrent query service.

Educe* is a *multi-user* KBMS kernel (paper §3.1, §3.3): compiled code
lives in the EDB precisely so many sessions can share one external
database.  When those sessions are threads of one server process
(:mod:`repro.service`), the shared substrate — buffer pool, procedure
store, loader caches — needs synchronisation.  Two primitives cover all
of it, mirroring the classic DBMS distinction:

* **Latch** — a short-term mutex protecting an in-memory structure for
  a handful of instructions (a buffer-pool frame table, a loader cache
  dict).  Held across no I/O and no other lock acquisition except the
  disc store's own I/O lock.
* **ReadWriteLock** — a long-term lock with shared/exclusive modes,
  serialising EDB *updates* against in-flight *queries*.  Held across
  whole operations (a query execution, a checkpoint).

Both count their traffic (``latch_*`` counters, see
``docs/OBSERVABILITY.md``), so contention is observable rather than
guessed at — and both time their *waits*: a contended acquisition
records the blocked duration in a wait histogram
(``latch_wait_ms`` / ``lock_read_wait_ms`` / ``lock_write_wait_ms``),
so tail contention is measurable, not just countable.  The uncontended
fast path takes no clock reading.  Both are pickle-transparent: a lock
is runtime state, so ``__getstate__`` drops the underlying primitives
and ``__setstate__`` rebuilds them fresh — an EDB checkpoint never
carries a held lock.

The locking order is documented in ``docs/CONCURRENCY.md``:
store ReadWriteLock → loader latch → buffer latch → disc I/O lock.
This module is stdlib-only so every layer may import it freely.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from .errors import LockOrderError
from .obs.registry import Histogram

__all__ = ["Latch", "LockOrderError", "ReadWriteLock"]


class Latch:
    """Short-term mutex with acquisition/contention counters.

    Counter updates happen while the latch is held, so they are exact —
    the differential concurrency suite asserts on them.
    """

    def __init__(self, name: str = "latch"):
        self.name = name
        self._lock = threading.Lock()
        self.acquisitions = 0
        self.contentions = 0
        self.wait_hist = Histogram()

    def acquire(self) -> None:
        contended = not self._lock.acquire(blocking=False)
        if contended:
            blocked = time.perf_counter()
            self._lock.acquire()
            waited_ms = (time.perf_counter() - blocked) * 1000.0
        self.acquisitions += 1
        if contended:
            self.contentions += 1
            # Recorded while the latch is held, so the histogram's
            # internal updates are exact, like the counters.
            self.wait_hist.observe(waited_ms)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "Latch":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # Latches guard runtime state only; a pickled owner (BufferPool
    # inside an EDB checkpoint) gets a fresh, unheld latch back.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        # Pre-telemetry pickles lack the wait histogram.
        self.__dict__.setdefault("wait_hist", Histogram())

    def counters(self) -> dict:
        return {
            "latch_acquisitions": self.acquisitions,
            "latch_contentions": self.contentions,
        }

    def histograms(self) -> Dict[str, Histogram]:
        return {"latch_wait_ms": self.wait_hist}


class ReadWriteLock:
    """Writer-preference readers/writer lock, reentrant on both sides.

    * Any number of threads may hold the lock in *read* mode; a thread
      already reading may re-enter read mode freely (nested store
      lookups inside a query) without queueing behind waiting writers —
      queueing there would deadlock against the writer waiting for the
      very reader to drain.
    * One thread holds *write* mode exclusively and may re-enter both
      write and read mode (``store_rules`` recursing for auxiliary
      procedures; mutators reading the procedures table).
    * Fresh readers queue behind waiting writers, so a stream of
      queries cannot starve an update.
    * Releasing the write hold while a writer-nested read is still
      held is a **write→read downgrade**: the residual read becomes a
      real shared hold, so a queued writer waits for its release
      instead of sneaking past an unregistered reader.
    * A read→write upgrade raises :class:`LockOrderError` — two
      upgrading readers would deadlock each other, so the attempt is a
      bug, not a wait.
    """

    def __init__(self, name: str = "rwlock"):
        self.name = name
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer: Optional[int] = None      # thread ident
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.read_waits = 0
        self.write_waits = 0
        self.read_wait_hist = Histogram()
        self.write_wait_hist = Histogram()

    # ------------------------------------------------------------- pickling

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for key in ("_mutex", "_cond", "_local"):
            state[key] = None
        state["_active_readers"] = 0
        state["_writer"] = None
        state["_writer_depth"] = 0
        state["_writers_waiting"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._local = threading.local()
        # Pre-telemetry pickles lack the wait histograms.
        self.__dict__.setdefault("read_wait_hist", Histogram())
        self.__dict__.setdefault("write_wait_hist", Histogram())

    # ------------------------------------------------------------ internals

    def _read_depth(self) -> int:
        return getattr(self._local, "read_depth", 0)

    # ----------------------------------------------------------------- read

    def acquire_read(self) -> None:
        me = threading.get_ident()
        depth = self._read_depth()
        if depth > 0:
            # Reentrant: no queueing, no fresh registration.
            self._local.read_depth = depth + 1
            return
        if self._writer == me:
            # Writer reading its own store: the hold is never counted
            # in _active_readers, and the thread-local flag remembers
            # that so a non-LIFO release (write dropped before the
            # read) cannot decrement the reader count it never bumped.
            self._local.read_depth = 1
            self._local.read_counted = False
            return
        with self._cond:
            self.read_acquisitions += 1
            if self._writer is not None or self._writers_waiting:
                self.read_waits += 1
                blocked = time.perf_counter()
                while self._writer is not None or self._writers_waiting:
                    self._cond.wait()
                # Observed under the condition's mutex: exact updates.
                self.read_wait_hist.observe(
                    (time.perf_counter() - blocked) * 1000.0)
            self._active_readers += 1
        self._local.read_depth = 1
        self._local.read_counted = True

    def release_read(self) -> None:
        depth = self._read_depth()
        if depth <= 0:
            raise RuntimeError(f"{self.name}: release_read without "
                               "a matching acquire_read")
        self._local.read_depth = depth - 1
        if depth > 1:
            return
        if not getattr(self._local, "read_counted", False):
            # Writer-nested hold: was never registered as a reader.
            return
        self._local.read_counted = False
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # ---------------------------------------------------------------- write

    def acquire_write(self) -> None:
        me = threading.get_ident()
        if self._writer == me:
            self._writer_depth += 1
            return
        if self._read_depth() > 0:
            raise LockOrderError(
                f"{self.name}: read→write upgrade would deadlock; "
                "release the read lock before mutating")
        with self._cond:
            self.write_acquisitions += 1
            waited = self._active_readers or self._writer is not None
            if waited:
                self.write_waits += 1
                blocked = time.perf_counter()
            self._writers_waiting += 1
            try:
                while self._active_readers or self._writer is not None:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            if waited:
                self.write_wait_hist.observe(
                    (time.perf_counter() - blocked) * 1000.0)
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        if self._writer != threading.get_ident():
            raise RuntimeError(f"{self.name}: release_write by a thread "
                               "that does not hold the write lock")
        self._writer_depth -= 1
        if self._writer_depth > 0:
            return
        downgrade = self._read_depth() > 0
        with self._cond:
            self._writer = None
            if downgrade:
                # Write→read downgrade: the thread still holds a
                # writer-nested (uncounted) read, so register it as a
                # real shared hold before waking anyone — a queued
                # writer must wait for this thread's release_read.
                self._active_readers += 1
                self._local.read_counted = True
            self._cond.notify_all()

    def write_depth(self) -> int:
        """Reentrancy depth of the *current thread's* write hold (0 when
        it does not hold the write lock)."""
        if self._writer != threading.get_ident():
            return 0
        return self._writer_depth

    # ------------------------------------------------------------ counters

    def counters(self) -> Dict[str, int]:
        return {
            "latch_read_acquisitions": self.read_acquisitions,
            "latch_write_acquisitions": self.write_acquisitions,
            "latch_read_waits": self.read_waits,
            "latch_write_waits": self.write_waits,
        }

    def histograms(self) -> Dict[str, Histogram]:
        return {
            "lock_read_wait_ms": self.read_wait_hist,
            "lock_write_wait_ms": self.write_wait_hist,
        }
